//! Logged operations and the virtual-handle map.
//!
//! The interception layer hands the application **virtual** buffer,
//! stream, and event handles; the [`VirtualMap`] translates them to the
//! physical handles of the current proxy-server epoch. When recovery
//! restarts the server, physical handles change — but "we cannot change
//! the handles already held in application variables", so recovery
//! re-creates the objects and *rebinds* the same virtual ids (§4.2.1).
//!
//! A [`LoggedOp`] is one entry in the replay or creation log: the call
//! with its (virtual) ids, its input values, and — for object-creating
//! calls — the virtual id that was handed out, so replay can rebind it.

use crate::executor::CommToken;
use collectives::ReduceOp;
use serde::{Deserialize, Serialize};
use simcore::{RankId, SimError, SimResult};
use simgpu::{BufferId, DeviceCall, EventId, StreamId};
use std::collections::HashMap;

/// A collective operation as recorded in the replay log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoggedColl {
    /// In-place all-reduce of a buffer.
    AllReduce {
        /// Communicator token.
        comm: CommToken,
        /// Operation sequence number on the communicator.
        gen: u64,
        /// Buffer (virtual).
        buf: BufferId,
        /// Reduction op.
        op: ReduceOp,
    },
    /// All-gather from `src` into `dst`.
    AllGather {
        /// Communicator token.
        comm: CommToken,
        /// Operation sequence number on the communicator.
        gen: u64,
        /// Source shard (virtual).
        src: BufferId,
        /// Gathered destination (virtual).
        dst: BufferId,
    },
    /// Reduce-scatter from `src` into shard `dst`.
    ReduceScatter {
        /// Communicator token.
        comm: CommToken,
        /// Operation sequence number on the communicator.
        gen: u64,
        /// Full-size source (virtual).
        src: BufferId,
        /// Shard destination (virtual).
        dst: BufferId,
        /// Reduction op.
        op: ReduceOp,
    },
    /// Broadcast of `buf` from `root`.
    Broadcast {
        /// Communicator token.
        comm: CommToken,
        /// Operation sequence number on the communicator.
        gen: u64,
        /// Root rank.
        root: RankId,
        /// Buffer (virtual).
        buf: BufferId,
    },
    /// Barrier.
    Barrier {
        /// Communicator token.
        comm: CommToken,
        /// Operation sequence number on the communicator.
        gen: u64,
    },
}

impl LoggedColl {
    /// Replay-log record version. Replay logs written before a failure
    /// are read during recovery of the restarted proxy server (§4.1), so
    /// variant or field changes must bump this alongside
    /// [`LoggedOp::SCHEMA_VERSION`].
    pub const SCHEMA_VERSION: u16 = 1;
}

/// One logged operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoggedOp {
    /// A device API call (ids are virtual). `result_vid` is the virtual id
    /// handed to the application for object-creating calls.
    Device {
        /// The call with virtual ids.
        call: DeviceCall,
        /// Virtual id returned to the application, if any.
        result_vid: Option<u64>,
    },
    /// A collective operation.
    Collective(LoggedColl),
    /// A p2p send.
    Send {
        /// Destination rank.
        dst: RankId,
        /// Tag.
        tag: u64,
        /// Sender's minibatch iteration (deterministic pairing key).
        seq: u64,
        /// Buffer sent (virtual).
        buf: BufferId,
        /// Intra-node transfer.
        same_node: bool,
    },
    /// A p2p receive.
    Recv {
        /// Source rank.
        src: RankId,
        /// Tag.
        tag: u64,
        /// Sender's minibatch iteration.
        seq: u64,
        /// Destination buffer (virtual).
        buf: BufferId,
    },
}

impl LoggedOp {
    /// Replay-log record version; see [`LoggedColl::SCHEMA_VERSION`].
    pub const SCHEMA_VERSION: u16 = 1;
}

/// Virtual→physical handle translation for one rank.
#[derive(Debug, Default)]
pub struct VirtualMap {
    buf: HashMap<u64, BufferId>,
    stream: HashMap<u64, StreamId>,
    event: HashMap<u64, EventId>,
    next: u64,
}

impl VirtualMap {
    /// Creates an empty map. Virtual ids start at a high base so that
    /// accidentally passing a physical id through translation fails fast.
    pub fn new() -> Self {
        VirtualMap {
            buf: HashMap::new(),
            stream: HashMap::new(),
            event: HashMap::new(),
            next: 1 << 32,
        }
    }

    fn fresh(&mut self) -> u64 {
        let v = self.next;
        self.next += 1;
        v
    }

    /// Registers a new physical buffer, returning its virtual handle.
    pub fn bind_buffer(&mut self, phys: BufferId) -> BufferId {
        let v = self.fresh();
        self.buf.insert(v, phys);
        BufferId(v)
    }

    /// Registers a new physical stream.
    pub fn bind_stream(&mut self, phys: StreamId) -> StreamId {
        let v = self.fresh();
        self.stream.insert(v, phys);
        StreamId(v)
    }

    /// Registers a new physical event.
    pub fn bind_event(&mut self, phys: EventId) -> EventId {
        let v = self.fresh();
        self.event.insert(v, phys);
        EventId(v)
    }

    /// Rebinds an existing virtual buffer to a new physical one (after
    /// server restart + object recreation).
    pub fn rebind_buffer(&mut self, virt: BufferId, phys: BufferId) {
        self.buf.insert(virt.0, phys);
    }

    /// Rebinds an existing virtual stream.
    pub fn rebind_stream(&mut self, virt: StreamId, phys: StreamId) {
        self.stream.insert(virt.0, phys);
    }

    /// Rebinds an existing virtual event.
    pub fn rebind_event(&mut self, virt: EventId, phys: EventId) {
        self.event.insert(virt.0, phys);
    }

    /// Resolves a virtual buffer handle.
    pub fn buffer(&self, virt: BufferId) -> SimResult<BufferId> {
        self.buf
            .get(&virt.0)
            .copied()
            .ok_or_else(|| SimError::InvalidHandle(format!("virtual {virt}")))
    }

    /// Resolves a virtual stream handle.
    pub fn stream(&self, virt: StreamId) -> SimResult<StreamId> {
        self.stream
            .get(&virt.0)
            .copied()
            .ok_or_else(|| SimError::InvalidHandle(format!("virtual {virt}")))
    }

    /// Resolves a virtual event handle.
    pub fn event(&self, virt: EventId) -> SimResult<EventId> {
        self.event
            .get(&virt.0)
            .copied()
            .ok_or_else(|| SimError::InvalidHandle(format!("virtual {virt}")))
    }

    /// Forgets a virtual buffer (after Free commits).
    pub fn unbind_buffer(&mut self, virt: BufferId) {
        self.buf.remove(&virt.0);
    }

    /// Forgets a virtual stream.
    pub fn unbind_stream(&mut self, virt: StreamId) {
        self.stream.remove(&virt.0);
    }

    /// Forgets a virtual event.
    pub fn unbind_event(&mut self, virt: EventId) {
        self.event.remove(&virt.0);
    }

    /// Translates a call with virtual ids into one with physical ids.
    pub fn to_physical(&self, call: &DeviceCall) -> SimResult<DeviceCall> {
        use simgpu::KernelKind as K;
        Ok(match call {
            DeviceCall::Malloc { .. } | DeviceCall::StreamCreate | DeviceCall::EventCreate => {
                call.clone()
            }
            DeviceCall::Free { buf } => DeviceCall::Free {
                buf: self.buffer(*buf)?,
            },
            DeviceCall::Upload { buf, data } => DeviceCall::Upload {
                buf: self.buffer(*buf)?,
                data: data.clone(),
            },
            DeviceCall::Download { buf } => DeviceCall::Download {
                buf: self.buffer(*buf)?,
            },
            DeviceCall::CopyD2D { src, dst } => DeviceCall::CopyD2D {
                src: self.buffer(*src)?,
                dst: self.buffer(*dst)?,
            },
            DeviceCall::Launch { stream, kernel } => {
                let b = |id: &BufferId| self.buffer(*id);
                let kernel = match kernel {
                    K::MatMul {
                        a,
                        b: bb,
                        out,
                        m,
                        k,
                        n,
                        trans_a,
                        trans_b,
                    } => K::MatMul {
                        a: b(a)?,
                        b: b(bb)?,
                        out: b(out)?,
                        m: *m,
                        k: *k,
                        n: *n,
                        trans_a: *trans_a,
                        trans_b: *trans_b,
                    },
                    K::BiasAdd {
                        x,
                        bias,
                        rows,
                        cols,
                    } => K::BiasAdd {
                        x: b(x)?,
                        bias: b(bias)?,
                        rows: *rows,
                        cols: *cols,
                    },
                    K::BiasGrad {
                        dy,
                        dbias,
                        rows,
                        cols,
                    } => K::BiasGrad {
                        dy: b(dy)?,
                        dbias: b(dbias)?,
                        rows: *rows,
                        cols: *cols,
                    },
                    K::Relu { x, out } => K::Relu {
                        x: b(x)?,
                        out: b(out)?,
                    },
                    K::ReluBwd { x, dy, dx } => K::ReluBwd {
                        x: b(x)?,
                        dy: b(dy)?,
                        dx: b(dx)?,
                    },
                    K::SoftmaxXentFwd {
                        logits,
                        labels,
                        probs,
                        loss,
                        rows,
                        cols,
                    } => K::SoftmaxXentFwd {
                        logits: b(logits)?,
                        labels: b(labels)?,
                        probs: b(probs)?,
                        loss: b(loss)?,
                        rows: *rows,
                        cols: *cols,
                    },
                    K::SoftmaxXentBwd {
                        probs,
                        labels,
                        dlogits,
                        rows,
                        cols,
                    } => K::SoftmaxXentBwd {
                        probs: b(probs)?,
                        labels: b(labels)?,
                        dlogits: b(dlogits)?,
                        rows: *rows,
                        cols: *cols,
                    },
                    K::LayerNormFwd {
                        x,
                        gamma,
                        beta,
                        out,
                        mean,
                        rstd,
                        rows,
                        cols,
                    } => K::LayerNormFwd {
                        x: b(x)?,
                        gamma: b(gamma)?,
                        beta: b(beta)?,
                        out: b(out)?,
                        mean: b(mean)?,
                        rstd: b(rstd)?,
                        rows: *rows,
                        cols: *cols,
                    },
                    K::LayerNormBwd {
                        x,
                        gamma,
                        dy,
                        mean,
                        rstd,
                        dx,
                        dgamma,
                        dbeta,
                        rows,
                        cols,
                    } => K::LayerNormBwd {
                        x: b(x)?,
                        gamma: b(gamma)?,
                        dy: b(dy)?,
                        mean: b(mean)?,
                        rstd: b(rstd)?,
                        dx: b(dx)?,
                        dgamma: b(dgamma)?,
                        dbeta: b(dbeta)?,
                        rows: *rows,
                        cols: *cols,
                    },
                    K::Zero { buf } => K::Zero { buf: b(buf)? },
                    K::Fill { buf, value } => K::Fill {
                        buf: b(buf)?,
                        value: *value,
                    },
                    K::Axpy { alpha, x, y } => K::Axpy {
                        alpha: *alpha,
                        x: b(x)?,
                        y: b(y)?,
                    },
                    K::Scale { alpha, x } => K::Scale {
                        alpha: *alpha,
                        x: b(x)?,
                    },
                    K::SgdStep {
                        param,
                        grad,
                        momentum,
                        lr,
                        mu,
                        weight_decay,
                    } => K::SgdStep {
                        param: b(param)?,
                        grad: b(grad)?,
                        momentum: b(momentum)?,
                        lr: *lr,
                        mu: *mu,
                        weight_decay: *weight_decay,
                    },
                    K::AdamStep {
                        param,
                        grad,
                        m,
                        v,
                        lr,
                        beta1,
                        beta2,
                        eps,
                        t,
                        weight_decay,
                    } => K::AdamStep {
                        param: b(param)?,
                        grad: b(grad)?,
                        m: b(m)?,
                        v: b(v)?,
                        lr: *lr,
                        beta1: *beta1,
                        beta2: *beta2,
                        eps: *eps,
                        t: *t,
                        weight_decay: *weight_decay,
                    },
                };
                DeviceCall::Launch {
                    stream: self.stream(*stream)?,
                    kernel,
                }
            }
            DeviceCall::StreamDestroy { stream } => DeviceCall::StreamDestroy {
                stream: self.stream(*stream)?,
            },
            DeviceCall::EventDestroy { event } => DeviceCall::EventDestroy {
                event: self.event(*event)?,
            },
            DeviceCall::EventRecord { stream, event } => DeviceCall::EventRecord {
                stream: self.stream(*stream)?,
                event: self.event(*event)?,
            },
            DeviceCall::StreamWaitEvent { stream, event } => DeviceCall::StreamWaitEvent {
                stream: self.stream(*stream)?,
                event: self.event(*event)?,
            },
            DeviceCall::EventQuery { event } => DeviceCall::EventQuery {
                event: self.event(*event)?,
            },
            DeviceCall::StreamSync { stream } => DeviceCall::StreamSync {
                stream: self.stream(*stream)?,
            },
            DeviceCall::DeviceSync => DeviceCall::DeviceSync,
        })
    }

    /// Number of live virtual bindings (diagnostics).
    pub fn bindings(&self) -> (usize, usize, usize) {
        (self.buf.len(), self.stream.len(), self.event.len())
    }

    /// Drops every binding whose virtual id is not in `keep` — called
    /// after a proxy-server restart or GPU migration, when all physical
    /// objects died with the context and only the re-created persistent
    /// objects have valid bindings (replay re-binds the rest as it
    /// re-executes their creation calls).
    pub fn retain_vids(&mut self, keep: &std::collections::HashSet<u64>) {
        self.buf.retain(|v, _| keep.contains(v));
        self.stream.retain(|v, _| keep.contains(v));
        self.event.retain(|v, _| keep.contains(v));
    }

    /// All live virtual buffer ids, sorted (used to key state checksums by
    /// virtual identity, which is stable across replay).
    pub fn buffer_vids(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.buf.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgpu::KernelKind;

    #[test]
    fn bind_and_translate_buffer_calls() -> SimResult<()> {
        let mut m = VirtualMap::new();
        let v = m.bind_buffer(BufferId(7));
        assert!(v.0 >= 1 << 32, "virtual ids live in a distinct range");
        let call = DeviceCall::Download { buf: v };
        let phys = m.to_physical(&call)?;
        assert_eq!(phys, DeviceCall::Download { buf: BufferId(7) });
        Ok(())
    }

    #[test]
    fn rebinding_redirects_without_changing_virtual_id() -> SimResult<()> {
        let mut m = VirtualMap::new();
        let v = m.bind_buffer(BufferId(1));
        m.rebind_buffer(v, BufferId(99));
        assert_eq!(m.buffer(v)?, BufferId(99));
        Ok(())
    }

    #[test]
    fn unknown_virtual_handle_errors() {
        let m = VirtualMap::new();
        assert!(m.buffer(BufferId(12345)).is_err());
        assert!(m.stream(StreamId(1)).is_err());
        assert!(m.event(EventId(1)).is_err());
    }

    #[test]
    fn kernel_translation_maps_every_buffer() -> SimResult<()> {
        let mut m = VirtualMap::new();
        let va = m.bind_buffer(BufferId(1));
        let vb = m.bind_buffer(BufferId(2));
        let vo = m.bind_buffer(BufferId(3));
        let vs = m.bind_stream(StreamId(10));
        let call = DeviceCall::Launch {
            stream: vs,
            kernel: KernelKind::MatMul {
                a: va,
                b: vb,
                out: vo,
                m: 2,
                k: 2,
                n: 2,
                trans_a: false,
                trans_b: false,
            },
        };
        match m.to_physical(&call)? {
            DeviceCall::Launch { stream, kernel } => {
                assert_eq!(stream, StreamId(10));
                assert_eq!(
                    kernel.buffers(),
                    vec![BufferId(1), BufferId(2), BufferId(3)]
                );
            }
            other => {
                return Err(SimError::Protocol(format!(
                    "unexpected translated call {other:?}"
                )))
            }
        }
        Ok(())
    }

    #[test]
    fn unbind_removes_bindings() {
        let mut m = VirtualMap::new();
        let v = m.bind_buffer(BufferId(1));
        m.unbind_buffer(v);
        assert!(m.buffer(v).is_err());
        assert_eq!(m.bindings(), (0, 0, 0));
    }
}

// ---------------------------------------------------------------------
// Wire format: the replay log is part of the worker's CPU state, so a
// CRIU image must serialize it (§4.3 — the restored worker resumes with
// its interception state intact).
// ---------------------------------------------------------------------

use simcore::codec::{Decode, Encode};

impl Encode for LoggedColl {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        match self {
            LoggedColl::AllReduce {
                comm,
                gen,
                buf: b,
                op,
            } => {
                0u8.encode(buf);
                comm.0.encode(buf);
                gen.encode(buf);
                b.encode(buf);
                encode_reduce_op(*op, buf);
            }
            LoggedColl::AllGather {
                comm,
                gen,
                src,
                dst,
            } => {
                1u8.encode(buf);
                comm.0.encode(buf);
                gen.encode(buf);
                src.encode(buf);
                dst.encode(buf);
            }
            LoggedColl::ReduceScatter {
                comm,
                gen,
                src,
                dst,
                op,
            } => {
                2u8.encode(buf);
                comm.0.encode(buf);
                gen.encode(buf);
                src.encode(buf);
                dst.encode(buf);
                encode_reduce_op(*op, buf);
            }
            LoggedColl::Broadcast {
                comm,
                gen,
                root,
                buf: b,
            } => {
                3u8.encode(buf);
                comm.0.encode(buf);
                gen.encode(buf);
                root.0.encode(buf);
                b.encode(buf);
            }
            LoggedColl::Barrier { comm, gen } => {
                4u8.encode(buf);
                comm.0.encode(buf);
                gen.encode(buf);
            }
        }
    }
}

fn encode_reduce_op(op: ReduceOp, buf: &mut bytes::BytesMut) {
    let v: u8 = match op {
        ReduceOp::Sum => 0,
        ReduceOp::Avg => 1,
        ReduceOp::Max => 2,
    };
    v.encode(buf);
}

fn decode_reduce_op(buf: &mut bytes::Bytes) -> SimResult<ReduceOp> {
    Ok(match u8::decode(buf)? {
        0 => ReduceOp::Sum,
        1 => ReduceOp::Avg,
        2 => ReduceOp::Max,
        other => return Err(SimError::Codec(format!("bad ReduceOp {other}"))),
    })
}

impl Decode for LoggedColl {
    fn decode(buf: &mut bytes::Bytes) -> SimResult<Self> {
        Ok(match u8::decode(buf)? {
            0 => LoggedColl::AllReduce {
                comm: CommToken(u64::decode(buf)?),
                gen: u64::decode(buf)?,
                buf: BufferId::decode(buf)?,
                op: decode_reduce_op(buf)?,
            },
            1 => LoggedColl::AllGather {
                comm: CommToken(u64::decode(buf)?),
                gen: u64::decode(buf)?,
                src: BufferId::decode(buf)?,
                dst: BufferId::decode(buf)?,
            },
            2 => LoggedColl::ReduceScatter {
                comm: CommToken(u64::decode(buf)?),
                gen: u64::decode(buf)?,
                src: BufferId::decode(buf)?,
                dst: BufferId::decode(buf)?,
                op: decode_reduce_op(buf)?,
            },
            3 => LoggedColl::Broadcast {
                comm: CommToken(u64::decode(buf)?),
                gen: u64::decode(buf)?,
                root: simcore::RankId(u32::decode(buf)?),
                buf: BufferId::decode(buf)?,
            },
            4 => LoggedColl::Barrier {
                comm: CommToken(u64::decode(buf)?),
                gen: u64::decode(buf)?,
            },
            other => return Err(SimError::Codec(format!("bad LoggedColl tag {other}"))),
        })
    }
}

impl Encode for LoggedOp {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        match self {
            LoggedOp::Device { call, result_vid } => {
                0u8.encode(buf);
                call.encode(buf);
                result_vid.encode(buf);
            }
            LoggedOp::Collective(c) => {
                1u8.encode(buf);
                c.encode(buf);
            }
            LoggedOp::Send {
                dst,
                tag,
                seq,
                buf: b,
                same_node,
            } => {
                2u8.encode(buf);
                dst.0.encode(buf);
                tag.encode(buf);
                seq.encode(buf);
                b.encode(buf);
                same_node.encode(buf);
            }
            LoggedOp::Recv {
                src,
                tag,
                seq,
                buf: b,
            } => {
                3u8.encode(buf);
                src.0.encode(buf);
                tag.encode(buf);
                seq.encode(buf);
                b.encode(buf);
            }
        }
    }
}

impl Decode for LoggedOp {
    fn decode(buf: &mut bytes::Bytes) -> SimResult<Self> {
        Ok(match u8::decode(buf)? {
            0 => LoggedOp::Device {
                call: DeviceCall::decode(buf)?,
                result_vid: Option::<u64>::decode(buf)?,
            },
            1 => LoggedOp::Collective(LoggedColl::decode(buf)?),
            2 => LoggedOp::Send {
                dst: simcore::RankId(u32::decode(buf)?),
                tag: u64::decode(buf)?,
                seq: u64::decode(buf)?,
                buf: BufferId::decode(buf)?,
                same_node: bool::decode(buf)?,
            },
            3 => LoggedOp::Recv {
                src: simcore::RankId(u32::decode(buf)?),
                tag: u64::decode(buf)?,
                seq: u64::decode(buf)?,
                buf: BufferId::decode(buf)?,
            },
            other => return Err(SimError::Codec(format!("bad LoggedOp tag {other}"))),
        })
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use simcore::codec::{decode_framed, encode_framed};
    use simcore::RankId;
    use simgpu::{AllocSite, BufferTag};

    #[test]
    fn logged_op_wire_round_trip() -> SimResult<()> {
        let ops = vec![
            LoggedOp::Device {
                call: DeviceCall::Malloc {
                    site: AllocSite::new("w", 8),
                    elems: 8,
                    logical_bytes: 32,
                    tag: BufferTag::Param,
                },
                result_vid: Some(1 << 32),
            },
            LoggedOp::Collective(LoggedColl::AllReduce {
                comm: CommToken(2),
                gen: 17,
                buf: BufferId(9),
                op: ReduceOp::Avg,
            }),
            LoggedOp::Collective(LoggedColl::ReduceScatter {
                comm: CommToken(3),
                gen: 4,
                src: BufferId(1),
                dst: BufferId(2),
                op: ReduceOp::Sum,
            }),
            LoggedOp::Send {
                dst: RankId(3),
                tag: 1,
                seq: 12,
                buf: BufferId(5),
                same_node: false,
            },
            LoggedOp::Recv {
                src: RankId(2),
                tag: 2,
                seq: 12,
                buf: BufferId(6),
            },
        ];
        let framed = encode_framed(&ops);
        let back: Vec<LoggedOp> = decode_framed(&framed)?;
        assert_eq!(back, ops);
        Ok(())
    }
}

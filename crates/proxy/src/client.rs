//! The proxy client: interception, replay logging, recovery primitives,
//! and replay-log correctness verification.
//!
//! [`ProxyClient`] implements [`Executor`], so the training framework runs
//! against it unchanged. Every call is:
//!
//! 1. translated from virtual to physical handles ([`VirtualMap`]),
//! 2. executed on the [`ProxyServer`],
//! 3. logged (with input values) into the per-minibatch replay log, and
//! 4. — on failure — routed to the installed [`RecoveryHandler`] instead
//!    of the application. If the handler recovers, the call is retried (or
//!    skipped, for the optimizer-step case of §4.2.2) and the application
//!    never observes the error.
//!
//! The client also provides the recovery primitives the handler composes:
//! reset-to-minibatch-start (in place, or via proxy-server restart with
//! object re-creation), host round-trips of persistent state, replica
//! state sync over a communicator, and log replay. Replay charges only
//! CPU dispatch cost per call — re-submission is asynchronous and GPU
//! re-execution overlaps, which is why the paper measures replay in
//! milliseconds (Table 7) — while still re-executing the math for real so
//! recovered state is bit-identical.

use crate::executor::{CommToken, Executor, PendingOp};
use crate::oplog::{LoggedColl, LoggedOp, OpLog, OpRing, VirtualMap};
use crate::server::{encode_batch, ProxyServer, BATCH_SHARD_BYTES};
use collectives::{CollectiveObserver, CommWorld, Communicator, NullObserver, ReduceOp};
use simcore::failure::FailureKind;
use simcore::time::ClockBoard;
use simcore::{RankId, SimError, SimResult, SimTime};
use simgpu::{BufferId, BufferTag, CallResult, DeviceCall, Gpu, GpuHealth};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Where a rank is within its current minibatch — the coordinate that
/// picks the recovery direction (§3.3/§4.2.2): before the optimizer the
/// persistent state is still minibatch-start (roll back); at or past the
/// optimizer the replicas' state is already next-minibatch (roll forward).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MinibatchPosition {
    /// In the forward/backward/all-reduce window.
    FwdBwd,
    /// Inside the optimizer step.
    Optimizer,
    /// After the optimizer, before the next `begin_minibatch`.
    AfterOptimizer,
}

/// What the recovery handler decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// Recovery succeeded; retry the failed operation.
    Retry,
    /// Recovery rolled this rank *forward* to the next minibatch
    /// (optimizer-step failures, §4.2.2); ignore device APIs until the
    /// next `begin_minibatch`.
    SkipToNextMinibatch,
}

/// Recovery policy invoked on the rank thread when an intercepted
/// operation fails. Implemented by the transparent JIT engine in the
/// `jitckpt` crate.
pub trait RecoveryHandler: Send + Sync {
    /// Attempts recovery. Runs on the failing rank's thread with full
    /// access to the client's recovery primitives.
    fn handle(
        &self,
        client: &mut ProxyClient,
        op: &PendingOp,
        err: &SimError,
    ) -> SimResult<RecoveryOutcome>;
}

struct CreationEntry {
    call: DeviceCall,
    vid: u64,
    created_seq: u64,
    freed_seq: Option<u64>,
}

/// Shard payload size for the CRIU-style CPU-state image: small enough to
/// bound staging memory while streaming a large replay log, large enough
/// that the per-shard frame overhead stays negligible.
const CPU_STATE_SHARD_BYTES: usize = 256 * 1024;

/// Default capacity of the deferred-call staging ring. The
/// `BENCH_proxy.json` capacity sweep shows per-op overhead knees at 64
/// (926 ns at 1, 449 ns at 64) with diminishing returns beyond — larger
/// rings only add staging memory, so 64 is the default.
pub const DEFAULT_BATCH_CAPACITY: usize = 64;

/// The per-rank interception client (Figure 2's "device proxy client").
pub struct ProxyClient {
    rank: RankId,
    clock_idx: usize,
    clock: Arc<ClockBoard>,
    server: ProxyServer,
    world: Arc<CommWorld>,
    vmap: VirtualMap,
    comms: HashMap<CommToken, Arc<Communicator>>,
    next_token: u64,
    creation_log: Vec<CreationEntry>,
    replay_log: OpLog,
    pending: OpRing,
    replay_workers: usize,
    op_seq: u64,
    minibatch_start_seq: u64,
    iteration: u64,
    p2p_seq: u64,
    minibatch_started: bool,
    position: MinibatchPosition,
    skip_rest: bool,
    replay_mode: bool,
    in_recovery: bool,
    handler: Option<Arc<dyn RecoveryHandler>>,
    observer: Arc<dyn CollectiveObserver>,
    logged_calls: u64,
    comm_gens: HashMap<CommToken, u64>,
    rendezvous_gens: HashMap<CommToken, u64>,
    verify_at: Option<u64>,
    verify_every: Option<u64>,
    last_verify_ok: Option<bool>,
}

impl ProxyClient {
    /// Creates a client for `rank` over a fresh server on `gpu`.
    pub fn new(rank: RankId, clock_idx: usize, gpu: Gpu, world: Arc<CommWorld>) -> Self {
        let clock = world.clock().clone();
        ProxyClient {
            rank,
            clock_idx,
            clock,
            server: ProxyServer::new(gpu),
            world,
            vmap: VirtualMap::new(),
            comms: HashMap::new(),
            next_token: 1,
            creation_log: Vec::new(),
            replay_log: OpLog::new(),
            pending: OpRing::with_capacity(DEFAULT_BATCH_CAPACITY),
            replay_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            op_seq: 0,
            minibatch_start_seq: 0,
            iteration: 0,
            p2p_seq: 0,
            minibatch_started: false,
            position: MinibatchPosition::FwdBwd,
            skip_rest: false,
            replay_mode: false,
            in_recovery: false,
            handler: None,
            observer: Arc::new(NullObserver),
            logged_calls: 0,
            comm_gens: HashMap::new(),
            rendezvous_gens: HashMap::new(),
            verify_at: Some(5),
            verify_every: None,
            last_verify_ok: None,
        }
    }

    /// Installs the recovery handler (the transparent JIT engine).
    pub fn set_handler(&mut self, handler: Arc<dyn RecoveryHandler>) {
        self.handler = Some(handler);
    }

    /// Installs the collective observer (the watchdog's ticket sink).
    pub fn set_observer(&mut self, obs: Arc<dyn CollectiveObserver>) {
        self.observer = obs;
    }

    /// Configures replay-log verification: first at iteration `first`,
    /// then every `every` iterations (§4.1: once at the 5th minibatch and
    /// then every N). Pass `None, None` to disable.
    pub fn set_verify_schedule(&mut self, first: Option<u64>, every: Option<u64>) {
        self.verify_at = first;
        self.verify_every = every;
    }

    /// Result of the most recent replay-log verification, if any ran.
    pub fn last_verify(&self) -> Option<bool> {
        self.last_verify_ok
    }

    /// Number of device APIs logged so far (steady-state overhead metric).
    pub fn logged_calls(&self) -> u64 {
        self.logged_calls
    }

    /// Length of the current replay log.
    pub fn replay_log_len(&self) -> usize {
        self.replay_log.len()
    }

    /// Deferred calls currently staged for the next batched round trip.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Current flush-batch capacity of the deferred-call staging ring.
    pub fn batch_capacity(&self) -> usize {
        self.pending.capacity()
    }

    /// Ops that would survive minibatch-boundary compaction of the
    /// current replay log (diagnostics / benchmarking).
    pub fn compacted_log_len(&self) -> usize {
        self.replay_log.compact().len()
    }

    /// Reconfigures the deferred-call staging capacity (flush batch
    /// size). Capacity 1 degenerates to one framed round trip per call —
    /// the unbatched baseline. Flushes anything currently staged first.
    pub fn set_batch_capacity(&mut self, cap: usize) -> SimResult<()> {
        self.flush_pending()?;
        self.pending = OpRing::with_capacity(cap);
        Ok(())
    }

    /// Sets the worker count for parallel replay-log decode during
    /// recovery (defaults to available CPU parallelism).
    pub fn set_replay_workers(&mut self, workers: usize) {
        self.replay_workers = workers.max(1);
    }

    /// Whether the rank was inside the optimizer step (set by the
    /// framework hooks of §4.2.2).
    pub fn in_optimizer(&self) -> bool {
        self.position == MinibatchPosition::Optimizer
    }

    /// Position within the current minibatch (framework hooks §4.2.2).
    pub fn position(&self) -> MinibatchPosition {
        self.position
    }

    /// The communication world.
    pub fn world(&self) -> &Arc<CommWorld> {
        &self.world
    }

    /// The server, read-only.
    pub fn server(&self) -> &ProxyServer {
        &self.server
    }

    /// The server, mutable (fault injection in tests).
    pub fn server_mut(&mut self) -> &mut ProxyServer {
        &mut self.server
    }

    /// Registered communicator tokens, sorted.
    pub fn comm_tokens(&self) -> Vec<CommToken> {
        let mut t: Vec<CommToken> = self.comms.keys().copied().collect();
        t.sort();
        t
    }

    /// Member ranks of a registered communicator.
    pub fn comm_ranks(&self, token: CommToken) -> SimResult<Vec<RankId>> {
        Ok(self.comm_arc(token)?.ranks().to_vec())
    }

    /// The communicator behind a token.
    pub fn comm(&self, token: CommToken) -> SimResult<Arc<Communicator>> {
        self.comm_arc(token)
    }

    /// Swaps the communicator behind a token (recovery re-creation: the
    /// token — like a virtual handle — stays stable for the application
    /// and the replay log).
    pub fn replace_comm(&mut self, token: CommToken, comm: Arc<Communicator>) {
        self.comms.insert(token, comm);
    }

    /// Rendezvous on a registered communicator (recovery's NCCL
    /// bootstrap; charges the comm-init cost, not logged).
    pub fn rendezvous_comm(&mut self, token: CommToken) -> SimResult<()> {
        let comm = self.comm_arc(token)?;
        // Rendezvous generations live in their own (high-bit) space: a
        // recovery rendezvous must never occupy the generation that the
        // interrupted data operation will retry with.
        let counter = self.rendezvous_gens.entry(token).or_insert(0);
        let gen = (1u64 << 63) | *counter;
        comm.rendezvous(self.rank, gen, self.observer.as_ref())?;
        *counter += 1;
        Ok(())
    }

    /// Current operation sequence number for a communicator token (only
    /// advanced on success, so retries and replays line up — see the
    /// collectives crate docs).
    fn gen_of(&self, token: CommToken) -> u64 {
        self.comm_gens.get(&token).copied().unwrap_or(0)
    }

    fn bump_gen(&mut self, token: CommToken) {
        *self.comm_gens.entry(token).or_insert(0) += 1;
    }

    /// Advances this rank's virtual clock (recovery-step accounting).
    pub fn charge(&self, t: SimTime) {
        self.clock.advance(self.clock_idx, t);
    }

    /// Current virtual time of this rank.
    pub fn now(&self) -> SimTime {
        self.clock.now(self.clock_idx)
    }

    fn comm_arc(&self, token: CommToken) -> SimResult<Arc<Communicator>> {
        self.comms
            .get(&token)
            .cloned()
            .ok_or_else(|| SimError::InvalidHandle(format!("comm token {token:?}")))
    }

    fn cost_model(&self) -> simcore::cost::CostModel {
        self.server.gpu().cost_model().clone()
    }

    fn check_comm_health(&self) -> SimResult<()> {
        let gpu = self.server.gpu();
        match gpu.health() {
            // Driver corruption surfaces at network operations even though
            // plain device calls still appear to succeed (§4.2.1 case 2).
            GpuHealth::DriverSuspect => Err(SimError::DriverCorrupted(gpu.id)),
            h => h.check_api(gpu.id),
        }
    }

    /// Executes a virtual-form device call on the server, virtualizing any
    /// returned handle. Charges full cost in normal mode, dispatch cost in
    /// replay mode.
    fn exec_virtual(&mut self, vcall: &DeviceCall) -> SimResult<CallResult> {
        let pcall = self.vmap.to_physical(vcall)?;
        let (res, cost) = self.server.exec(&pcall)?;
        let charge = if self.replay_mode {
            self.cost_model().replay_dispatch
        } else {
            cost + self.cost_model().effective_log_overhead()
        };
        self.clock.advance(self.clock_idx, charge);
        Ok(match res {
            CallResult::Buffer(b) => CallResult::Buffer(self.vmap.bind_buffer(b)),
            CallResult::Stream(s) => CallResult::Stream(self.vmap.bind_stream(s)),
            CallResult::Event(e) => CallResult::Event(self.vmap.bind_event(e)),
            other => other,
        })
    }

    /// Whether a call may be deferred into the batched round trip: it
    /// returns no result, so the application cannot observe that it has
    /// not reached the device yet (the CUDA-async submission model).
    fn is_deferrable(call: &DeviceCall) -> bool {
        matches!(
            call,
            DeviceCall::Upload { .. }
                | DeviceCall::CopyD2D { .. }
                | DeviceCall::Launch { .. }
                | DeviceCall::Free { .. }
        )
    }

    /// Stages a deferrable call instead of a per-call round trip:
    /// translates it to physical handles *now* (binding errors stay
    /// synchronous), logs it (the log records submission order, which is
    /// what recovery replays), and charges only the log overhead. The
    /// device cost is charged when the batch flushes, so virtual-time
    /// totals at every synchronization point match per-call execution.
    fn defer(&mut self, vcall: &DeviceCall) -> SimResult<CallResult> {
        let pcall = self.vmap.to_physical(vcall)?;
        if self.pending.is_full() {
            self.flush_pending()?;
            // The flush may have routed a failure to the recovery
            // handler and rolled this rank forward past the minibatch.
            if self.skip_rest {
                return Ok(CallResult::None);
            }
        }
        if self.pending.push(pcall).is_err() {
            return Err(SimError::Protocol(
                "deferred-call ring rejected a push right after flushing".into(),
            ));
        }
        self.log_device(vcall, &CallResult::None);
        self.clock
            .advance(self.clock_idx, self.cost_model().effective_log_overhead());
        Ok(CallResult::None)
    }

    /// Sends every staged call to the server in one framed round trip
    /// and charges the summed device cost. On failure the remaining
    /// staged calls are *discarded*, not retried: they are already in
    /// the replay log, so the recovery handler's reset + replay
    /// regenerates their effects (re-executing here would double-apply
    /// whatever part of the batch ran before the fault).
    pub fn flush_pending(&mut self) -> SimResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let calls = self.pending.drain();
        let frame = encode_batch(&calls, BATCH_SHARD_BYTES);
        match self.server.exec_batch(&frame) {
            Ok((_, cost)) => {
                self.clock.advance(self.clock_idx, cost);
                Ok(())
            }
            Err(e) => {
                let op = match calls.into_iter().next() {
                    Some(first) => PendingOp::Device(first),
                    None => PendingOp::Device(DeviceCall::DeviceSync),
                };
                match self.dispatch_handler(op, e)? {
                    RecoveryOutcome::Retry => Ok(()),
                    RecoveryOutcome::SkipToNextMinibatch => {
                        self.skip_rest = true;
                        Ok(())
                    }
                }
            }
        }
    }

    fn record_creation(&mut self, vcall: &DeviceCall, vid: u64) {
        let persistent = match vcall {
            DeviceCall::Malloc { tag, .. } => tag.is_persistent(),
            DeviceCall::StreamCreate | DeviceCall::EventCreate => true,
            _ => false,
        };
        if persistent {
            self.creation_log.push(CreationEntry {
                call: vcall.clone(),
                vid,
                created_seq: self.op_seq,
                freed_seq: None,
            });
        }
    }

    fn record_destroy(&mut self, vid: u64) {
        let seq = self.op_seq;
        if let Some(e) = self
            .creation_log
            .iter_mut()
            .find(|e| e.vid == vid && e.freed_seq.is_none())
        {
            e.freed_seq = Some(seq);
        }
    }

    fn log_device(&mut self, vcall: &DeviceCall, res: &CallResult) {
        self.op_seq += 1;
        let result_vid = match res {
            CallResult::Buffer(b) => Some(b.0),
            CallResult::Stream(s) => Some(s.0),
            CallResult::Event(e) => Some(e.0),
            _ => None,
        };
        if let Some(vid) = result_vid {
            self.record_creation(vcall, vid);
        }
        match vcall {
            DeviceCall::Free { buf } => self.record_destroy(buf.0),
            DeviceCall::StreamDestroy { stream } => self.record_destroy(stream.0),
            DeviceCall::EventDestroy { event } => self.record_destroy(event.0),
            _ => {}
        }
        self.replay_log.push_device(vcall, result_vid);
        self.logged_calls += 1;
    }

    fn log_op(&mut self, op: LoggedOp) {
        self.op_seq += 1;
        self.replay_log.push(&op);
        self.logged_calls += 1;
        self.clock
            .advance(self.clock_idx, self.cost_model().effective_log_overhead());
    }

    fn synthesize(&self, vcall: &DeviceCall) -> CallResult {
        match vcall {
            DeviceCall::EventQuery { .. } => CallResult::Bool(true),
            DeviceCall::Download { .. } => CallResult::Data(Vec::new()),
            _ => CallResult::None,
        }
    }

    fn dispatch_handler(&mut self, op: PendingOp, err: SimError) -> SimResult<RecoveryOutcome> {
        if self.in_recovery || self.replay_mode {
            return Err(err);
        }
        let handler = match &self.handler {
            Some(h) => h.clone(),
            None => return Err(err),
        };
        self.in_recovery = true;
        let outcome = handler.handle(self, &op, &err);
        self.in_recovery = false;
        outcome
    }

    // ------------------------------------------------------------------
    // Recovery primitives (used by RecoveryHandler implementations).
    // ------------------------------------------------------------------

    /// Reset to minibatch start *in place* (§4.2.1 case 1): keep the
    /// server and all persistent buffers; drop everything replay will
    /// regenerate.
    pub fn reset_in_place(&mut self) -> SimResult<()> {
        self.pending.clear();
        let gpu = self.server.gpu_mut();
        gpu.free_non_persistent();
        gpu.commit_frees();
        Ok(())
    }

    /// Reset via proxy-server restart (§4.2.1 cases 2–3): clears all
    /// driver/GPU state, then re-creates every persistent object that
    /// existed at minibatch start and rebinds its virtual handle. Param
    /// and optimizer buffer *contents* must then be restored, either from
    /// a host snapshot taken before the restart or from a replica.
    pub fn reset_with_restart(&mut self) -> SimResult<()> {
        self.pending.clear();
        let t = self.server.restart()?;
        self.charge(t);
        self.recreate_persistent_objects()
    }

    /// Migrates this rank to a replacement GPU (hard errors, §4.3), then
    /// re-creates persistent objects on it.
    pub fn migrate_to_gpu(&mut self, gpu: Gpu) -> SimResult<()> {
        self.pending.clear();
        self.server.attach_new_gpu(gpu);
        self.recreate_persistent_objects()
    }

    fn recreate_persistent_objects(&mut self) -> SimResult<()> {
        // Objects alive at minibatch start: created before the boundary
        // and not freed before it. Objects created during the current
        // minibatch are regenerated by replay instead.
        let boundary = self.minibatch_start_seq;
        let entries: Vec<(DeviceCall, u64)> = self
            .creation_log
            .iter()
            .filter(|e| {
                e.created_seq < boundary && e.freed_seq.map(|f| f >= boundary).unwrap_or(true)
            })
            .map(|e| (e.call.clone(), e.vid))
            .collect();
        // Every physical object died with the old context; drop all stale
        // bindings so a handle can never silently alias a fresh object.
        let keep: std::collections::HashSet<u64> = entries.iter().map(|(_, vid)| *vid).collect();
        self.vmap.retain_vids(&keep);
        let handle_cost = self.cost_model().handle_create;
        for (call, vid) in entries {
            let (res, _) = self.server.exec(&call)?;
            match res {
                CallResult::Buffer(b) => self.vmap.rebind_buffer(BufferId(vid), b),
                CallResult::Stream(s) => self.vmap.rebind_stream(simgpu::StreamId(vid), s),
                CallResult::Event(e) => self.vmap.rebind_event(simgpu::EventId(vid), e),
                other => {
                    return Err(SimError::Protocol(format!(
                        "creation replay returned {other:?}"
                    )))
                }
            }
            self.charge(handle_cost);
        }
        Ok(())
    }

    /// Copies persistent state to host memory (before clearing a
    /// driver-corrupted device), charging the PCIe cost.
    pub fn snapshot_persistent_to_host(&mut self) -> SimResult<crate::PersistentSnapshot> {
        self.flush_pending()?;
        let gpu = self.server.gpu();
        if !gpu.health().memory_readable() {
            return Err(SimError::CudaSticky(gpu.id));
        }
        let (snap, bytes) = gpu.snapshot_persistent();
        self.charge(self.cost_model().memcpy(bytes));
        Ok((snap, bytes))
    }

    /// Restores persistent state from a host snapshot, charging PCIe cost.
    pub fn restore_persistent_from_host(
        &mut self,
        snap: &[(String, BufferTag, Vec<f32>)],
        bytes: u64,
    ) -> SimResult<()> {
        self.server.gpu_mut().restore_persistent(snap)?;
        self.charge(self.cost_model().memcpy(bytes));
        Ok(())
    }

    /// Synchronizes persistent state from `root`'s replica over a
    /// communicator (§4.2.1 case 3 / §4.2.2): every member calls this; the
    /// root supplies its state, everyone else overwrites theirs. Relies on
    /// the cross-rank-stable buffer ordering guaranteed by allocation-site
    /// naming. Not logged.
    pub fn sync_persistent_from_replica(
        &mut self,
        token: CommToken,
        root: RankId,
    ) -> SimResult<()> {
        // The root's contribution must reflect every submitted call.
        // (During recovery the ring is already empty — the reset
        // primitives discard it — so this is a no-op there.)
        self.flush_pending()?;
        let comm = self.comm_arc(token)?;
        let (snap, bytes) = self.server.gpu().snapshot_persistent();
        let contribution = if self.rank == root {
            let mut flat = Vec::new();
            for (_, _, data) in &snap {
                flat.extend_from_slice(data);
            }
            Some(flat)
        } else {
            None
        };
        // Recovery-time state sync uses its own generation space (like
        // rendezvous): it must not occupy the generation of the data
        // operation being retried.
        let counter = self.rendezvous_gens.entry(token).or_insert(0);
        let gen = (1u64 << 62) | *counter;
        let flat = comm.broadcast(
            self.rank,
            gen,
            root,
            contribution,
            bytes,
            self.observer.as_ref(),
        )?;
        *counter += 1;
        if self.rank != root {
            let mut offset = 0usize;
            let mut restored = Vec::with_capacity(snap.len());
            for (key, tag, data) in &snap {
                let len = data.len();
                if offset + len > flat.len() {
                    return Err(SimError::Protocol(
                        "replica state shorter than local layout".into(),
                    ));
                }
                restored.push((key.clone(), *tag, flat[offset..offset + len].to_vec()));
                offset += len;
            }
            if offset != flat.len() {
                return Err(SimError::Protocol(
                    "replica state longer than local layout".into(),
                ));
            }
            self.server.gpu_mut().restore_persistent(&restored)?;
        }
        Ok(())
    }

    /// Serializes the worker's CRIU-relevant CPU state: iteration,
    /// minibatch position, the replay log, and the per-communicator
    /// generation counters — everything the interception layer needs to
    /// resume on a replacement node (§4.3). The paper's CRIU image
    /// contains the whole process; this is the part our simulation's
    /// correctness depends on, and it round-trips through the same
    /// sharded, per-shard-checksummed container as checkpoints: the
    /// state streams through [`simcore::codec::Encoder`], so a large
    /// replay log never forms a second monolithic copy and corruption in
    /// transit is reported by shard index.
    pub fn worker_cpu_state(&mut self) -> SimResult<bytes::Bytes> {
        // Deferred calls are part of the log but not yet of device
        // state; an image must capture a synchronized worker.
        self.flush_pending()?;
        let mut gens: Vec<(u64, u64)> = self.comm_gens.iter().map(|(t, g)| (t.0, *g)).collect();
        gens.sort_unstable();
        let mut enc = simcore::codec::Encoder::new(CPU_STATE_SHARD_BYTES);
        enc.write(&self.iteration);
        enc.write(&(self.skip_rest as u8));
        enc.write(&self.replay_log);
        enc.write(&gens);
        Ok(simcore::codec::concat_shards(&enc.finish()))
    }

    /// Restores the CRIU-relevant CPU state captured by
    /// [`ProxyClient::worker_cpu_state`].
    pub fn restore_worker_cpu_state(&mut self, image: &bytes::Bytes) -> SimResult<()> {
        use simcore::codec::Decode;
        let mut buf = simcore::codec::split_shards(image)?;
        self.iteration = u64::decode(&mut buf)?;
        self.skip_rest = u8::decode(&mut buf)? != 0;
        self.replay_log = OpLog::decode(&mut buf)?;
        let gens: Vec<(u64, u64)> = Vec::decode(&mut buf)?;
        self.comm_gens = gens.into_iter().map(|(t, g)| (CommToken(t), g)).collect();
        Ok(())
    }

    /// Replays the current minibatch's logged operations (device calls at
    /// dispatch cost, collectives/p2p for real). Returns the number of
    /// ops replayed.
    ///
    /// The log is first **compacted** (superseded ops dropped — see
    /// [`OpLog::compact`]) and then decoded across per-stream lanes in
    /// parallel ([`OpLog::decode_parallel`]); execution stays serial in
    /// log order, which preserves every cross-stream event edge.
    pub fn replay(&mut self) -> SimResult<usize> {
        // Deferred-but-unflushed calls are already in the log; replay
        // regenerates their effects, so the staging ring is discarded.
        self.pending.clear();
        let compacted = self.replay_log.compact();
        let ops = compacted.decode_parallel(self.replay_workers)?;
        self.replay_ops(&ops)
    }

    /// Replays the full, uncompacted log serially (baseline for the
    /// compaction-equivalence proptests and `proxy_bench`).
    pub fn replay_full(&mut self) -> SimResult<usize> {
        self.pending.clear();
        let ops = self.replay_log.ops()?;
        self.replay_ops(&ops)
    }

    fn replay_ops(&mut self, ops: &[LoggedOp]) -> SimResult<usize> {
        self.replay_mode = true;
        let result = (|| {
            for op in ops {
                self.exec_logged(op)?;
            }
            Ok(ops.len())
        })();
        self.replay_mode = false;
        result
    }

    fn exec_logged(&mut self, op: &LoggedOp) -> SimResult<()> {
        match op {
            LoggedOp::Device { call, result_vid } => {
                let pcall = self.vmap.to_physical(call)?;
                let (res, _) = self.server.exec(&pcall)?;
                self.charge(self.cost_model().replay_dispatch);
                // Rebind the originally handed-out virtual id to the new
                // physical object.
                if let Some(vid) = result_vid {
                    match res {
                        CallResult::Buffer(b) => self.vmap.rebind_buffer(BufferId(*vid), b),
                        CallResult::Stream(s) => self.vmap.rebind_stream(simgpu::StreamId(*vid), s),
                        CallResult::Event(e) => self.vmap.rebind_event(simgpu::EventId(*vid), e),
                        _ => {}
                    }
                }
                Ok(())
            }
            LoggedOp::Collective(c) => {
                if self.replay_mode {
                    self.charge(self.cost_model().replay_dispatch);
                }
                self.exec_collective(c)
            }
            LoggedOp::Send {
                dst,
                tag,
                seq,
                buf,
                same_node,
            } => {
                let p = self.vmap.buffer(*buf)?;
                let b = self.server.gpu().buffer(p)?;
                let (data, logical) = (b.data.clone(), b.logical_bytes);
                self.world.send(
                    self.rank,
                    self.clock_idx,
                    *dst,
                    *tag,
                    *seq,
                    data,
                    logical,
                    *same_node,
                )
            }
            LoggedOp::Recv { src, tag, seq, buf } => {
                let p = self.vmap.buffer(*buf)?;
                // Register the blocking recv with the hang watch-list,
                // like a collective (a dead upstream stage hangs us here).
                self.p2p_seq += 1;
                let ticket = collectives::CollectiveTicket {
                    comm: collectives::CommId(u64::MAX),
                    generation: self.p2p_seq,
                    rank: self.rank,
                    kind: collectives::CollKind::Barrier,
                    entered_at: std::time::Instant::now(),
                };
                self.observer.collective_started(&ticket);
                let result = self.world.recv(*src, self.rank, self.clock_idx, *tag, *seq);
                self.observer.collective_finished(&ticket);
                let data = result?;
                self.server.gpu_mut().load_buffer(p, &data)
            }
        }
    }

    fn exec_collective(&mut self, c: &LoggedColl) -> SimResult<()> {
        match c {
            LoggedColl::AllReduce { comm, gen, buf, op } => {
                let p = self.vmap.buffer(*buf)?;
                let (data, logical) = {
                    let b = self.server.gpu().buffer(p)?;
                    (b.data.clone(), b.logical_bytes)
                };
                let out = self.comm_arc(*comm)?.all_reduce(
                    self.rank,
                    *gen,
                    data,
                    *op,
                    logical,
                    self.observer.as_ref(),
                )?;
                self.server.gpu_mut().load_buffer(p, &out)
            }
            LoggedColl::AllGather {
                comm,
                gen,
                src,
                dst,
            } => {
                let ps = self.vmap.buffer(*src)?;
                let pd = self.vmap.buffer(*dst)?;
                let (data, logical) = {
                    let b = self.server.gpu().buffer(ps)?;
                    (b.data.clone(), b.logical_bytes)
                };
                let out = self.comm_arc(*comm)?.all_gather(
                    self.rank,
                    *gen,
                    data,
                    logical,
                    self.observer.as_ref(),
                )?;
                self.server.gpu_mut().load_buffer(pd, &out)
            }
            LoggedColl::ReduceScatter {
                comm,
                gen,
                src,
                dst,
                op,
            } => {
                let ps = self.vmap.buffer(*src)?;
                let pd = self.vmap.buffer(*dst)?;
                let (data, logical) = {
                    let b = self.server.gpu().buffer(ps)?;
                    (b.data.clone(), b.logical_bytes)
                };
                let out = self.comm_arc(*comm)?.reduce_scatter(
                    self.rank,
                    *gen,
                    data,
                    *op,
                    logical,
                    self.observer.as_ref(),
                )?;
                self.server.gpu_mut().load_buffer(pd, &out)
            }
            LoggedColl::Broadcast {
                comm,
                gen,
                root,
                buf,
            } => {
                let p = self.vmap.buffer(*buf)?;
                let (data, logical) = {
                    let b = self.server.gpu().buffer(p)?;
                    (b.data.clone(), b.logical_bytes)
                };
                let contribution = if self.rank == *root { Some(data) } else { None };
                let out = self.comm_arc(*comm)?.broadcast(
                    self.rank,
                    *gen,
                    *root,
                    contribution,
                    logical,
                    self.observer.as_ref(),
                )?;
                self.server.gpu_mut().load_buffer(p, &out)
            }
            LoggedColl::Barrier { comm, gen } => {
                self.comm_arc(*comm)?
                    .barrier(self.rank, *gen, self.observer.as_ref())
            }
        }
    }

    /// Checksums of all live buffers keyed by *virtual* id (stable across
    /// replay, unlike physical ids).
    fn checksum_by_virtual(&self) -> BTreeMap<u64, u64> {
        let mut out = BTreeMap::new();
        let gpu = self.server.gpu();
        for pid in gpu.buffer_ids() {
            // Reverse-map physical→virtual by scanning bindings; the
            // binding count is small (model-sized, not data-sized).
            if let Some(vid) = self.reverse_buf(pid) {
                if let Ok(b) = gpu.buffer(pid) {
                    out.insert(vid, b.checksum());
                }
            }
        }
        out
    }

    fn reverse_buf(&self, phys: BufferId) -> Option<u64> {
        // VirtualMap has no reverse index; scan. Bounded by live buffers.
        for vid in self.virtual_buffer_ids() {
            if let Ok(p) = self.vmap.buffer(BufferId(vid)) {
                if p == phys {
                    return Some(vid);
                }
            }
        }
        None
    }

    fn virtual_buffer_ids(&self) -> Vec<u64> {
        self.vmap.buffer_vids()
    }

    /// §4.1 replay-log correctness verification. Called at the end of the
    /// backward pass (pre-optimizer): checksums all buffers, resets to
    /// minibatch start, replays the log, and compares. All ranks must run
    /// verification at the same iteration (replayed collectives
    /// rendezvous across ranks). Returns true when the log reproduces the
    /// state exactly.
    pub fn verify_replay_log(&mut self) -> SimResult<bool> {
        self.flush_pending()?;
        let before = self.checksum_by_virtual();
        self.reset_in_place()?;
        self.replay()?;
        let after = self.checksum_by_virtual();
        let ok = before == after;
        self.last_verify_ok = Some(ok);
        Ok(ok)
    }

    fn verification_due(&self) -> bool {
        if Some(self.iteration) == self.verify_at {
            return true;
        }
        if let (Some(first), Some(every)) = (self.verify_at, self.verify_every) {
            if self.iteration > first && (self.iteration - first).is_multiple_of(every) {
                return true;
            }
        }
        false
    }
}

impl Executor for ProxyClient {
    fn rank(&self) -> RankId {
        self.rank
    }

    fn clock_idx(&self) -> usize {
        self.clock_idx
    }

    fn clock(&self) -> Arc<ClockBoard> {
        self.clock.clone()
    }

    fn call(&mut self, vcall: DeviceCall) -> SimResult<CallResult> {
        if self.skip_rest && !vcall.creates_object() {
            return Ok(self.synthesize(&vcall));
        }
        if Self::is_deferrable(&vcall) {
            loop {
                match self.defer(&vcall) {
                    Ok(res) => return Ok(res),
                    Err(e) => match self.dispatch_handler(PendingOp::Device(vcall.clone()), e)? {
                        RecoveryOutcome::Retry => continue,
                        RecoveryOutcome::SkipToNextMinibatch => {
                            self.skip_rest = true;
                            return Ok(self.synthesize(&vcall));
                        }
                    },
                }
            }
        }
        // Every non-deferrable call is a synchronization point: the
        // staged batch must reach the device first.
        self.flush_pending()?;
        if self.skip_rest && !vcall.creates_object() {
            return Ok(self.synthesize(&vcall));
        }
        loop {
            match self.exec_virtual(&vcall) {
                Ok(res) => {
                    self.log_device(&vcall, &res);
                    return Ok(res);
                }
                Err(e) => match self.dispatch_handler(PendingOp::Device(vcall.clone()), e)? {
                    RecoveryOutcome::Retry => continue,
                    RecoveryOutcome::SkipToNextMinibatch => {
                        self.skip_rest = true;
                        return Ok(self.synthesize(&vcall));
                    }
                },
            }
        }
    }

    fn register_comm(&mut self, comm: Arc<Communicator>) -> CommToken {
        let token = CommToken(self.next_token);
        self.next_token += 1;
        self.comms.insert(token, comm);
        token
    }

    fn all_reduce(&mut self, comm: CommToken, buf: BufferId, op: ReduceOp) -> SimResult<()> {
        if self.skip_rest {
            return Ok(());
        }
        self.flush_pending()?;
        if self.skip_rest {
            return Ok(());
        }
        let logged = LoggedColl::AllReduce {
            comm,
            gen: self.gen_of(comm),
            buf,
            op,
        };
        loop {
            let attempt = (|| {
                self.check_comm_health()?;
                self.exec_collective(&logged)
            })();
            match attempt {
                Ok(()) => {
                    self.bump_gen(comm);
                    self.log_op(LoggedOp::Collective(logged));
                    return Ok(());
                }
                Err(e) => match self.dispatch_handler(
                    PendingOp::Collective {
                        comm,
                        op: "all_reduce",
                    },
                    e,
                )? {
                    RecoveryOutcome::Retry => continue,
                    RecoveryOutcome::SkipToNextMinibatch => {
                        self.skip_rest = true;
                        return Ok(());
                    }
                },
            }
        }
    }

    fn all_gather_into(&mut self, comm: CommToken, src: BufferId, dst: BufferId) -> SimResult<()> {
        if self.skip_rest {
            return Ok(());
        }
        self.flush_pending()?;
        if self.skip_rest {
            return Ok(());
        }
        let logged = LoggedColl::AllGather {
            comm,
            gen: self.gen_of(comm),
            src,
            dst,
        };
        loop {
            let attempt = (|| {
                self.check_comm_health()?;
                self.exec_collective(&logged)
            })();
            match attempt {
                Ok(()) => {
                    self.bump_gen(comm);
                    self.log_op(LoggedOp::Collective(logged));
                    return Ok(());
                }
                Err(e) => match self.dispatch_handler(
                    PendingOp::Collective {
                        comm,
                        op: "all_gather",
                    },
                    e,
                )? {
                    RecoveryOutcome::Retry => continue,
                    RecoveryOutcome::SkipToNextMinibatch => {
                        self.skip_rest = true;
                        return Ok(());
                    }
                },
            }
        }
    }

    fn reduce_scatter_into(
        &mut self,
        comm: CommToken,
        src: BufferId,
        dst: BufferId,
        op: ReduceOp,
    ) -> SimResult<()> {
        if self.skip_rest {
            return Ok(());
        }
        self.flush_pending()?;
        if self.skip_rest {
            return Ok(());
        }
        let logged = LoggedColl::ReduceScatter {
            comm,
            gen: self.gen_of(comm),
            src,
            dst,
            op,
        };
        loop {
            let attempt = (|| {
                self.check_comm_health()?;
                self.exec_collective(&logged)
            })();
            match attempt {
                Ok(()) => {
                    self.bump_gen(comm);
                    self.log_op(LoggedOp::Collective(logged));
                    return Ok(());
                }
                Err(e) => match self.dispatch_handler(
                    PendingOp::Collective {
                        comm,
                        op: "reduce_scatter",
                    },
                    e,
                )? {
                    RecoveryOutcome::Retry => continue,
                    RecoveryOutcome::SkipToNextMinibatch => {
                        self.skip_rest = true;
                        return Ok(());
                    }
                },
            }
        }
    }

    fn broadcast(&mut self, comm: CommToken, root: RankId, buf: BufferId) -> SimResult<()> {
        if self.skip_rest {
            return Ok(());
        }
        self.flush_pending()?;
        if self.skip_rest {
            return Ok(());
        }
        let logged = LoggedColl::Broadcast {
            comm,
            gen: self.gen_of(comm),
            root,
            buf,
        };
        loop {
            let attempt = (|| {
                self.check_comm_health()?;
                self.exec_collective(&logged)
            })();
            match attempt {
                Ok(()) => {
                    self.bump_gen(comm);
                    self.log_op(LoggedOp::Collective(logged));
                    return Ok(());
                }
                Err(e) => match self.dispatch_handler(
                    PendingOp::Collective {
                        comm,
                        op: "broadcast",
                    },
                    e,
                )? {
                    RecoveryOutcome::Retry => continue,
                    RecoveryOutcome::SkipToNextMinibatch => {
                        self.skip_rest = true;
                        return Ok(());
                    }
                },
            }
        }
    }

    fn barrier(&mut self, comm: CommToken) -> SimResult<()> {
        if self.skip_rest {
            return Ok(());
        }
        self.flush_pending()?;
        if self.skip_rest {
            return Ok(());
        }
        let logged = LoggedColl::Barrier {
            comm,
            gen: self.gen_of(comm),
        };
        loop {
            match self.exec_collective(&logged) {
                Ok(()) => {
                    self.bump_gen(comm);
                    self.log_op(LoggedOp::Collective(logged));
                    return Ok(());
                }
                Err(e) => match self.dispatch_handler(
                    PendingOp::Collective {
                        comm,
                        op: "barrier",
                    },
                    e,
                )? {
                    RecoveryOutcome::Retry => continue,
                    RecoveryOutcome::SkipToNextMinibatch => {
                        self.skip_rest = true;
                        return Ok(());
                    }
                },
            }
        }
    }

    fn send(
        &mut self,
        dst: RankId,
        tag: u64,
        seq: u64,
        buf: BufferId,
        same_node: bool,
    ) -> SimResult<()> {
        if self.skip_rest {
            return Ok(());
        }
        self.flush_pending()?;
        if self.skip_rest {
            return Ok(());
        }
        let logged = LoggedOp::Send {
            dst,
            tag,
            seq,
            buf,
            same_node,
        };
        loop {
            match self.exec_logged(&logged) {
                Ok(()) => {
                    self.log_op(logged);
                    return Ok(());
                }
                Err(e) => match self.dispatch_handler(PendingOp::P2p { peer: dst, tag }, e)? {
                    RecoveryOutcome::Retry => continue,
                    RecoveryOutcome::SkipToNextMinibatch => {
                        self.skip_rest = true;
                        return Ok(());
                    }
                },
            }
        }
    }

    fn recv_into(&mut self, src: RankId, tag: u64, seq: u64, buf: BufferId) -> SimResult<()> {
        if self.skip_rest {
            return Ok(());
        }
        self.flush_pending()?;
        if self.skip_rest {
            return Ok(());
        }
        let logged = LoggedOp::Recv { src, tag, seq, buf };
        loop {
            match self.exec_logged(&logged) {
                Ok(()) => {
                    self.log_op(logged);
                    return Ok(());
                }
                Err(e) => match self.dispatch_handler(PendingOp::P2p { peer: src, tag }, e)? {
                    RecoveryOutcome::Retry => continue,
                    RecoveryOutcome::SkipToNextMinibatch => {
                        self.skip_rest = true;
                        return Ok(());
                    }
                },
            }
        }
    }

    fn begin_minibatch(&mut self, iteration: u64) -> SimResult<()> {
        // Deferred calls belong to the *ending* minibatch: they must hit
        // the device (and their Frees reach the graveyard) before the
        // boundary commits frees and clears the log.
        self.flush_pending()?;
        self.iteration = iteration;
        self.minibatch_started = true;
        self.skip_rest = false;
        self.position = MinibatchPosition::FwdBwd;
        self.server.gpu_mut().commit_frees();
        // Purge creation-log entries whose Free committed before this
        // boundary — resets can no longer need them.
        let boundary = self.minibatch_start_seq;
        self.creation_log
            .retain(|e| e.freed_seq.map(|f| f >= boundary).unwrap_or(true));
        self.replay_log.clear();
        self.minibatch_start_seq = self.op_seq;
        Ok(())
    }

    fn pre_optimizer(&mut self) -> SimResult<()> {
        if self.skip_rest {
            return Ok(());
        }
        self.flush_pending()?;
        if self.verification_due() {
            let ok = self.verify_replay_log()?;
            if !ok {
                // §4.1: implicit device inputs detected — transparent JIT
                // must be disabled; surface loudly.
                return Err(SimError::Protocol(
                    "replay-log verification failed: implicit device inputs detected".into(),
                ));
            }
        }
        self.position = MinibatchPosition::Optimizer;
        Ok(())
    }

    fn post_optimizer(&mut self) -> SimResult<()> {
        self.flush_pending()?;
        self.position = MinibatchPosition::AfterOptimizer;
        Ok(())
    }

    fn persistent_snapshot(&mut self) -> SimResult<(Vec<(String, BufferTag, Vec<f32>)>, u64)> {
        self.flush_pending()?;
        let gpu = self.server.gpu();
        if !gpu.health().memory_readable() {
            return Err(SimError::CudaSticky(gpu.id));
        }
        Ok(gpu.snapshot_persistent())
    }

    fn restore_persistent(&mut self, snap: &[(String, BufferTag, Vec<f32>)]) -> SimResult<()> {
        self.flush_pending()?;
        self.server.gpu_mut().restore_persistent(snap)
    }

    fn inject(&mut self, kind: FailureKind) {
        self.server.gpu_mut().inject(kind);
    }

    fn inject_transient(&mut self, comm: CommToken) -> SimResult<()> {
        self.comm_arc(comm)?.inject_transient_fault(self.rank);
        Ok(())
    }

    fn health(&self) -> GpuHealth {
        self.server.gpu().health()
    }

    fn iteration(&self) -> u64 {
        self.iteration
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::cost::CostModel;
    use simcore::GpuId;
    use simgpu::{AllocSite, KernelKind};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn client() -> ProxyClient {
        let clock = Arc::new(ClockBoard::new(1));
        let world = CommWorld::new(clock, CostModel::v100(), 8);
        ProxyClient::new(RankId(0), 0, Gpu::new(GpuId(0), CostModel::v100()), world)
    }

    #[test]
    fn default_batch_capacity_is_the_sweep_knee() {
        // The BENCH_proxy.json capacity sweep knees at 64; pin the default
        // so it cannot silently regress to the unbatched (or oversized)
        // configurations.
        assert_eq!(DEFAULT_BATCH_CAPACITY, 64);
        assert_eq!(client().batch_capacity(), DEFAULT_BATCH_CAPACITY);
    }

    fn alloc(
        c: &mut ProxyClient,
        path: &str,
        data: Vec<f32>,
        tag: BufferTag,
    ) -> SimResult<BufferId> {
        let n = data.len() as u64;
        let b = c
            .call(DeviceCall::Malloc {
                site: AllocSite::new(path, n),
                elems: n,
                logical_bytes: n * 4,
                tag,
            })?
            .buffer()?;
        c.call(DeviceCall::Upload { buf: b, data })?;
        Ok(b)
    }

    fn download(c: &mut ProxyClient, b: BufferId) -> SimResult<Vec<f32>> {
        c.call(DeviceCall::Download { buf: b })?.data()
    }

    #[test]
    fn handles_are_virtualized() -> SimResult<()> {
        let mut c = client();
        let b = alloc(&mut c, "w", vec![1.0], BufferTag::Param)?;
        assert!(b.0 >= 1 << 32, "application sees virtual ids");
        assert_eq!(download(&mut c, b)?, vec![1.0]);
        Ok(())
    }

    #[test]
    fn replay_log_clears_at_minibatch_start() -> SimResult<()> {
        let mut c = client();
        alloc(&mut c, "w", vec![1.0], BufferTag::Param)?;
        assert!(c.replay_log_len() > 0);
        c.begin_minibatch(0)?;
        assert_eq!(c.replay_log_len(), 0);
        alloc(&mut c, "act", vec![0.0], BufferTag::Activation)?;
        assert_eq!(c.replay_log_len(), 2); // malloc + upload
        Ok(())
    }

    #[test]
    fn reset_in_place_plus_replay_reproduces_state() -> SimResult<()> {
        let mut c = client();
        let s = c.call(DeviceCall::StreamCreate)?.stream()?;
        let w = alloc(&mut c, "w", vec![1.0, 2.0], BufferTag::Param)?;
        c.begin_minibatch(0)?;
        let act = alloc(&mut c, "act", vec![3.0, 4.0], BufferTag::Activation)?;
        c.call(DeviceCall::Launch {
            stream: s,
            kernel: KernelKind::Axpy {
                alpha: 2.0,
                x: w,
                y: act,
            },
        })?;
        assert_eq!(download(&mut c, act)?, vec![5.0, 8.0]);
        // Reset drops the activation; replay regenerates it.
        c.reset_in_place()?;
        c.replay()?;
        assert_eq!(download(&mut c, act)?, vec![5.0, 8.0]);
        assert_eq!(download(&mut c, w)?, vec![1.0, 2.0]);
        Ok(())
    }

    #[test]
    fn verify_replay_log_passes_on_faithful_log() -> SimResult<()> {
        let mut c = client();
        let s = c.call(DeviceCall::StreamCreate)?.stream()?;
        let w = alloc(&mut c, "w", vec![1.0; 8], BufferTag::Param)?;
        c.begin_minibatch(0)?;
        let act = alloc(&mut c, "act", vec![0.5; 8], BufferTag::Activation)?;
        c.call(DeviceCall::Launch {
            stream: s,
            kernel: KernelKind::Axpy {
                alpha: 1.5,
                x: w,
                y: act,
            },
        })?;
        assert!(c.verify_replay_log()?);
        assert_eq!(c.last_verify(), Some(true));
        Ok(())
    }

    #[test]
    fn scheduled_verification_runs_in_pre_optimizer() -> SimResult<()> {
        let mut c = client();
        c.set_verify_schedule(Some(1), None);
        // Realistic shape: params are only read during the fwd/bwd window
        // (replay must be idempotent over that window, which is exactly
        // what verification checks).
        let w = alloc(&mut c, "w", vec![1.0, -1.0], BufferTag::Param)?;
        let s = c.call(DeviceCall::StreamCreate)?.stream()?;
        for it in 0..3 {
            c.begin_minibatch(it)?;
            let act = alloc(&mut c, "act", vec![0.0, 0.0], BufferTag::Activation)?;
            c.call(DeviceCall::Launch {
                stream: s,
                kernel: KernelKind::Relu { x: w, out: act },
            })?;
            c.pre_optimizer()?;
            c.post_optimizer()?;
            // Framework discipline: activations are released at minibatch
            // end (the Free defers to the graveyard until the next
            // minibatch commits).
            c.call(DeviceCall::Free { buf: act })?;
        }
        assert_eq!(c.last_verify(), Some(true));
        Ok(())
    }

    #[test]
    fn reset_with_restart_recreates_persistent_objects() -> SimResult<()> {
        let mut c = client();
        let s = c.call(DeviceCall::StreamCreate)?.stream()?;
        let w = alloc(&mut c, "w", vec![7.0, 8.0], BufferTag::Param)?;
        c.begin_minibatch(0)?;
        // Take a host snapshot, corrupt driver, restart, restore.
        let (snap, bytes) = c.snapshot_persistent_to_host()?;
        c.inject(FailureKind::DriverCorruption);
        c.reset_with_restart()?;
        assert_eq!(c.health(), GpuHealth::Healthy);
        // Virtual handles survived; contents restored from host.
        c.restore_persistent_from_host(&snap, bytes)?;
        assert_eq!(download(&mut c, w)?, vec![7.0, 8.0]);
        // Stream handle also still valid.
        c.call(DeviceCall::StreamSync { stream: s })?;
        Ok(())
    }

    #[test]
    fn skip_mode_synthesizes_until_next_minibatch() -> SimResult<()> {
        let mut c = client();
        let s = c.call(DeviceCall::StreamCreate)?.stream()?;
        let w = alloc(&mut c, "w", vec![1.0], BufferTag::Param)?;
        c.begin_minibatch(0)?;
        // Enter skip mode (as the §4.2.2 recovery path would).
        c.skip_rest = true;
        c.call(DeviceCall::Launch {
            stream: s,
            kernel: KernelKind::Scale { alpha: 10.0, x: w },
        })?;
        // The launch was ignored.
        c.skip_rest = false;
        assert_eq!(download(&mut c, w)?, vec![1.0]);
        // Next minibatch clears skip mode.
        c.skip_rest = true;
        c.begin_minibatch(1)?;
        c.call(DeviceCall::Launch {
            stream: s,
            kernel: KernelKind::Scale { alpha: 10.0, x: w },
        })?;
        assert_eq!(download(&mut c, w)?, vec![10.0]);
        Ok(())
    }

    struct CountingHandler {
        calls: AtomicUsize,
    }

    impl RecoveryHandler for CountingHandler {
        fn handle(
            &self,
            client: &mut ProxyClient,
            _op: &PendingOp,
            _err: &SimError,
        ) -> SimResult<RecoveryOutcome> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            // Clear the sticky error by restarting the server, restore
            // nothing (test uses no persistent data dependence).
            client.reset_with_restart()?;
            client.replay()?;
            Ok(RecoveryOutcome::Retry)
        }
    }

    #[test]
    fn handler_recovers_sticky_error_transparently() -> SimResult<()> {
        let mut c = client();
        let handler = Arc::new(CountingHandler {
            calls: AtomicUsize::new(0),
        });
        c.set_handler(handler.clone());
        let s = c.call(DeviceCall::StreamCreate)?.stream()?;
        let w = alloc(&mut c, "w", vec![2.0], BufferTag::Param)?;
        c.begin_minibatch(0)?;
        let g = alloc(&mut c, "g", vec![1.0], BufferTag::Gradient)?;
        // Poison the context mid-minibatch.
        c.inject(FailureKind::StickyCuda);
        // The launch is deferred; the fault surfaces inside the batched
        // flush at the next synchronization point (the download below),
        // the handler recovers, and the "application" never sees an
        // error.
        c.call(DeviceCall::Launch {
            stream: s,
            kernel: KernelKind::Axpy {
                alpha: 1.0,
                x: g,
                y: w,
            },
        })?;
        assert_eq!(handler.calls.load(Ordering::SeqCst), 0);
        // Param buffer contents were wiped by the context teardown in this
        // minimal handler (no replica restore), but the object exists and
        // the replayed upload of `g` reproduced the gradient. The full
        // restore path is exercised by the jitckpt engine's tests.
        assert_eq!(download(&mut c, g)?, vec![1.0]);
        assert_eq!(handler.calls.load(Ordering::SeqCst), 1);
        Ok(())
    }

    #[test]
    fn without_handler_errors_surface() {
        let mut c = client();
        c.inject(FailureKind::StickyCuda);
        let err = c.call(DeviceCall::DeviceSync).unwrap_err();
        assert!(matches!(err, SimError::CudaSticky(_)));
    }

    #[test]
    fn logged_calls_count_grows() -> SimResult<()> {
        let mut c = client();
        let before = c.logged_calls();
        alloc(&mut c, "w", vec![1.0], BufferTag::Param)?;
        assert_eq!(c.logged_calls(), before + 2);
        Ok(())
    }

    #[test]
    fn sync_persistent_from_replica_copies_state() -> SimResult<()> {
        use std::thread;
        let clock = Arc::new(ClockBoard::new(2));
        let world = CommWorld::new(clock, CostModel::v100(), 8);
        let comm = world.create_comm(vec![RankId(0), RankId(1)], vec![0, 1]);
        let mk =
            |rank: u32, idx: usize, val: f32, world: &Arc<CommWorld>| -> SimResult<ProxyClient> {
                let mut c = ProxyClient::new(
                    RankId(rank),
                    idx,
                    Gpu::new(GpuId(rank), CostModel::v100()),
                    world.clone(),
                );
                alloc(&mut c, "w", vec![val; 4], BufferTag::Param)?;
                Ok(c)
            };
        let mut c0 = mk(0, 0, 9.0, &world)?;
        let mut c1 = mk(1, 1, 0.0, &world)?;
        let t0 = c0.register_comm(comm.clone());
        let t1 = c1.register_comm(comm.clone());
        let h0 = thread::spawn(move || -> SimResult<ProxyClient> {
            c0.sync_persistent_from_replica(t0, RankId(0))?;
            Ok(c0)
        });
        let h1 = thread::spawn(move || -> SimResult<ProxyClient> {
            c1.sync_persistent_from_replica(t1, RankId(0))?;
            Ok(c1)
        });
        let _c0 = h0
            .join()
            .map_err(|_| SimError::Protocol("rank 0 panicked".into()))??;
        let mut c1 = h1
            .join()
            .map_err(|_| SimError::Protocol("rank 1 panicked".into()))??;
        let vb = c1.virtual_buffer_ids()[0];
        assert_eq!(download(&mut c1, BufferId(vb))?, vec![9.0; 4]);
        Ok(())
    }
}

#[cfg(test)]
mod verification_tests {
    use super::*;
    use simcore::cost::CostModel;
    use simcore::GpuId;
    use simgpu::{AllocSite, KernelKind};

    fn client() -> ProxyClient {
        let clock = Arc::new(ClockBoard::new(1));
        let world = CommWorld::new(clock, CostModel::v100(), 8);
        ProxyClient::new(RankId(0), 0, Gpu::new(GpuId(0), CostModel::v100()), world)
    }

    #[test]
    fn verification_catches_implicit_device_inputs() -> SimResult<()> {
        // §4.1: "it is theoretically possible for the host CPU process to
        // send implicit input arguments ... without device APIs being
        // invoked ... in the unlikely case of such implicit communication,
        // we need to disable the transparent mechanism". Simulate exactly
        // that — mutate device memory behind the interception layer — and
        // assert verification FAILS rather than silently passing.
        let mut c = client();
        let s = c.call(DeviceCall::StreamCreate)?.stream()?;
        let w = c
            .call(DeviceCall::Malloc {
                site: AllocSite::new("w", 4),
                elems: 4,
                logical_bytes: 16,
                tag: BufferTag::Param,
            })?
            .buffer()?;
        c.call(DeviceCall::Upload {
            buf: w,
            data: vec![1.0; 4],
        })?;
        c.begin_minibatch(0)?;
        let act = c
            .call(DeviceCall::Malloc {
                site: AllocSite::new("act", 4),
                elems: 4,
                logical_bytes: 16,
                tag: BufferTag::Activation,
            })?
            .buffer()?;
        c.call(DeviceCall::Upload {
            buf: act,
            data: vec![0.5; 4],
        })?;
        // The implicit channel: host pokes a value into the activation
        // buffer WITHOUT a logged Upload, then a logged kernel consumes
        // it. (Like any host access to device memory, the poke requires
        // the submission queue to be drained first.)
        c.flush_pending()?;
        let phys_ids = c.server().gpu().buffer_ids();
        let phys_act = *phys_ids
            .last()
            .ok_or_else(|| SimError::Protocol("no physical ids".into()))?;
        c.server_mut()
            .gpu_mut()
            .load_buffer(phys_act, &[9.0, 9.0, 9.0, 9.0])?;
        c.call(DeviceCall::Launch {
            stream: s,
            kernel: KernelKind::Axpy {
                alpha: 1.0,
                x: w,
                y: act,
            },
        })?;
        // Replay reproduces Upload(0.5) + Axpy → 1.5, not 10.0: mismatch.
        assert!(!c.verify_replay_log()?);
        assert_eq!(c.last_verify(), Some(false));
        Ok(())
    }

    #[test]
    fn scheduled_verification_failure_surfaces_as_protocol_error() -> SimResult<()> {
        let mut c = client();
        c.set_verify_schedule(Some(0), None);
        let s = c.call(DeviceCall::StreamCreate)?.stream()?;
        let w = c
            .call(DeviceCall::Malloc {
                site: AllocSite::new("w", 2),
                elems: 2,
                logical_bytes: 8,
                tag: BufferTag::Param,
            })?
            .buffer()?;
        c.call(DeviceCall::Upload {
            buf: w,
            data: vec![1.0, 2.0],
        })?;
        c.begin_minibatch(0)?;
        // Mutating a Param inside the fwd/bwd window is exactly the kind
        // of behaviour replay cannot reproduce idempotently.
        c.call(DeviceCall::Launch {
            stream: s,
            kernel: KernelKind::Scale { alpha: 2.0, x: w },
        })?;
        let err = c.pre_optimizer().unwrap_err();
        assert!(matches!(err, SimError::Protocol(_)), "{err}");
        Ok(())
    }
}

//! Real-time hang detection.
//!
//! A failure on one rank manifests on every *other* rank as a collective
//! that never completes (§3.1). The watchdog is a dedicated thread that
//! tracks outstanding blocking operations and, when one exceeds the
//! timeout, fires a one-shot hang action — in user-level mode that action
//! checkpoints GPU state and notifies the scheduler; in transparent mode
//! it aborts the communicators so the blocked ranks surface into the
//! recovery handler.
//!
//! The timeout runs on *real* time because a hang is a real hang: the
//! blocked thread's virtual clock is frozen.

use crate::executor::CommToken;
use collectives::{CollectiveObserver, CollectiveTicket};
use simcore::sync::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Key identifying an outstanding blocking operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum OpKey {
    Collective { comm: u64, gen: u64 },
    Custom(u64),
}

struct Inner {
    outstanding: Mutex<HashMap<OpKey, Instant>>,
    timeout: Duration,
    fired: AtomicBool,
    stop: AtomicBool,
    action: Mutex<Option<Box<dyn FnOnce() + Send>>>,
    next_custom: Mutex<u64>,
}

/// A watchdog thread monitoring one rank's blocking operations.
pub struct Watchdog {
    inner: Arc<Inner>,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns a watchdog with the given hang timeout and one-shot
    /// action. Fails if the OS cannot spawn the monitor thread — a rank
    /// without a watchdog would hang undetected, so the caller must not
    /// proceed as if it were protected.
    pub fn spawn(
        timeout: Duration,
        action: impl FnOnce() + Send + 'static,
    ) -> simcore::SimResult<Self> {
        let inner = Arc::new(Inner {
            outstanding: Mutex::new(HashMap::new()),
            timeout,
            fired: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            action: Mutex::new(Some(Box::new(action))),
            next_custom: Mutex::new(0),
        });
        let thread_inner = inner.clone();
        let handle = std::thread::Builder::new()
            .name("jit-watchdog".into())
            .spawn(move || watch_loop(thread_inner))
            .map_err(|e| {
                simcore::SimError::Protocol(format!("failed to spawn watchdog thread: {e}"))
            })?;
        Ok(Watchdog {
            inner,
            handle: Some(handle),
        })
    }

    /// An observer that feeds collective entry/exit into this watchdog
    /// (installed at the interception layer).
    pub fn observer(&self) -> Arc<WatchdogObserver> {
        Arc::new(WatchdogObserver {
            inner: self.inner.clone(),
        })
    }

    /// Registers a custom blocking operation (e.g. a p2p recv); returns a
    /// token to pass to [`Watchdog::end_op`].
    pub fn begin_op(&self) -> u64 {
        let id = {
            let mut n = self.inner.next_custom.lock();
            let id = *n;
            *n += 1;
            id
        };
        self.inner
            .outstanding
            .lock()
            .insert(OpKey::Custom(id), Instant::now());
        id
    }

    /// Retires a custom blocking operation.
    pub fn end_op(&self, id: u64) {
        self.inner.outstanding.lock().remove(&OpKey::Custom(id));
    }

    /// True once the hang action has fired.
    pub fn fired(&self) -> bool {
        self.inner.fired.load(Ordering::Acquire)
    }

    /// Clears outstanding state after recovery (the action stays consumed;
    /// arm a new watchdog per recovery epoch if re-detection is needed).
    pub fn clear(&self) {
        self.inner.outstanding.lock().clear();
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn watch_loop(inner: Arc<Inner>) {
    loop {
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        if !inner.fired.load(Ordering::Acquire) {
            let hang = {
                let outstanding = inner.outstanding.lock();
                outstanding
                    .values()
                    .any(|since| since.elapsed() > inner.timeout)
            };
            if hang {
                inner.fired.store(true, Ordering::Release);
                if std::env::var("JIT_DEBUG").is_ok() {
                    let outstanding = inner.outstanding.lock();
                    eprintln!(
                        "[watchdog] firing: {} outstanding ops: {:?}",
                        outstanding.len(),
                        outstanding.keys().collect::<Vec<_>>()
                    );
                }
                // Take the action out, *then* run it: `if let` extends
                // the `action` lock's temporary guard across the body, and
                // the hang action calls into abort paths that take
                // communicator/world locks of their own.
                let action = inner.action.lock().take();
                if let Some(action) = action {
                    action();
                }
            }
        }
        // jitlint::allow(virtual_time): the watchdog scans real-time hang deadlines by design (§3.1); 2ms bounds detection latency
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// [`CollectiveObserver`] adapter feeding a [`Watchdog`].
pub struct WatchdogObserver {
    inner: Arc<Inner>,
}

impl CollectiveObserver for WatchdogObserver {
    fn collective_started(&self, t: &CollectiveTicket) {
        self.inner.outstanding.lock().insert(
            OpKey::Collective {
                comm: t.comm.0,
                gen: t.generation,
            },
            t.entered_at,
        );
    }

    fn collective_finished(&self, t: &CollectiveTicket) {
        self.inner.outstanding.lock().remove(&OpKey::Collective {
            comm: t.comm.0,
            gen: t.generation,
        });
    }
}

/// Convenience: the set of communicator tokens a recovery handler must
/// rebuild, paired with the watchdog that was watching them. (Used by the
/// transparent recovery engine; defined here to keep proxy self-contained.)
pub type WatchedComms = Vec<CommToken>;

#[cfg(test)]
mod tests {
    use super::*;
    use collectives::CollKind;
    use simcore::RankId;
    use std::sync::atomic::AtomicUsize;

    fn ticket(gen: u64) -> CollectiveTicket {
        CollectiveTicket {
            comm: collectives::CommId(1),
            generation: gen,
            rank: RankId(0),
            kind: CollKind::AllReduce,
            entered_at: Instant::now(),
        }
    }

    #[test]
    fn completed_collectives_never_fire() -> simcore::SimResult<()> {
        let fired = Arc::new(AtomicBool::new(false));
        let f = fired.clone();
        let wd = Watchdog::spawn(Duration::from_millis(40), move || {
            f.store(true, Ordering::SeqCst)
        })?;
        let obs = wd.observer();
        for g in 0..5 {
            let t = ticket(g);
            obs.collective_started(&t);
            std::thread::sleep(Duration::from_millis(5));
            obs.collective_finished(&t);
        }
        std::thread::sleep(Duration::from_millis(80));
        assert!(!wd.fired());
        assert!(!fired.load(Ordering::SeqCst));
        Ok(())
    }

    #[test]
    fn outstanding_collective_fires_once() -> simcore::SimResult<()> {
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        let wd = Watchdog::spawn(Duration::from_millis(20), move || {
            c.fetch_add(1, Ordering::SeqCst);
        })?;
        let obs = wd.observer();
        obs.collective_started(&ticket(0));
        std::thread::sleep(Duration::from_millis(100));
        assert!(wd.fired());
        assert_eq!(count.load(Ordering::SeqCst), 1, "action fires exactly once");
        Ok(())
    }

    #[test]
    fn custom_ops_are_watched() -> simcore::SimResult<()> {
        let fired = Arc::new(AtomicBool::new(false));
        let f = fired.clone();
        let wd = Watchdog::spawn(Duration::from_millis(20), move || {
            f.store(true, Ordering::SeqCst)
        })?;
        let id = wd.begin_op();
        std::thread::sleep(Duration::from_millis(60));
        assert!(wd.fired());
        wd.end_op(id);
        Ok(())
    }

    #[test]
    fn fast_custom_ops_do_not_fire() -> simcore::SimResult<()> {
        let wd = Watchdog::spawn(Duration::from_millis(50), || {})?;
        for _ in 0..5 {
            let id = wd.begin_op();
            std::thread::sleep(Duration::from_millis(2));
            wd.end_op(id);
        }
        std::thread::sleep(Duration::from_millis(80));
        assert!(!wd.fired());
        Ok(())
    }
}

//! The restartable device proxy server.
//!
//! In the real system (Figure 2) the proxy server is a separate OS process
//! holding the CUDA context, NCCL communicators, and all driver state;
//! the worker process talks to it over shared memory. Its one superpower
//! is being *disposable*: killing and restarting it clears corrupted
//! GPU/driver software state without perturbing the worker (§4.2.1 cases
//! 2–3), and keeps the worker CPU image CRIU-friendly (§4.3).
//!
//! In the simulation the "process" is a restartable state machine around
//! the device: [`ProxyServer::restart`] tears down the context (dropping
//! every buffer, stream, and event — exactly what a context teardown does)
//! and bumps the epoch so stale physical handles are detectable.

use bytes::Bytes;
use simcore::codec::{concat_shards, split_shards, Decode, Encoder};
use simcore::{SimError, SimResult, SimTime};
use simgpu::{CallResult, DeviceCall, Gpu};

/// Shard payload size for batched device-call frames. Small enough that
/// a frame fits the shared-memory channel's message slab; large enough
/// that a typical flush (hundreds of launches) is one or two frames.
/// Oversized calls (large `Upload` payloads) simply straddle frames —
/// the shard codec splits at exact byte boundaries.
pub const BATCH_SHARD_BYTES: usize = 64 * 1024;

/// Encodes a batch of device calls into a single contiguous message of
/// length-prefixed, CRC-framed shards (the checkpoint shard format from
/// [`simcore::codec`], reused as the client→server wire format).
pub fn encode_batch(calls: &[DeviceCall], shard_payload: usize) -> Bytes {
    let mut enc = Encoder::new(shard_payload);
    enc.write(&(calls.len() as u64));
    for call in calls {
        enc.write(call);
    }
    concat_shards(&enc.finish())
}

/// Decodes a batched device-call frame produced by [`encode_batch`],
/// verifying per-shard CRCs.
pub fn decode_batch(frame: &Bytes) -> SimResult<Vec<DeviceCall>> {
    let mut payload = split_shards(frame)?;
    let n = u64::decode(&mut payload)? as usize;
    let mut calls = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        calls.push(DeviceCall::decode(&mut payload)?);
    }
    Ok(calls)
}

/// The device proxy server: owns the GPU context for one rank.
#[derive(Debug)]
pub struct ProxyServer {
    gpu: Gpu,
    epoch: u32,
}

impl ProxyServer {
    /// Starts a server over a freshly attached device.
    pub fn new(gpu: Gpu) -> Self {
        ProxyServer { gpu, epoch: 0 }
    }

    /// Executes one device call, returning the result and its virtual
    /// duration.
    pub fn exec(&mut self, call: &DeviceCall) -> SimResult<(CallResult, SimTime)> {
        self.gpu.exec(call)
    }

    /// Executes a batched frame of deferred calls in one round trip,
    /// returning how many calls ran and their summed virtual duration.
    ///
    /// Only result-less calls (`Upload`, `CopyD2D`, `Launch`, `Free`) may
    /// be deferred into a batch — anything producing a handle or data
    /// must go through [`ProxyServer::exec`] synchronously, so a batched
    /// call yielding a result is a protocol error. Execution stops at
    /// the first failing call; the client discards the rest of the batch
    /// and lets recovery's log replay regenerate their effects.
    pub fn exec_batch(&mut self, frame: &Bytes) -> SimResult<(usize, SimTime)> {
        let calls = decode_batch(frame)?;
        let mut total = SimTime::ZERO;
        for call in &calls {
            let (result, t) = self.gpu.exec(call)?;
            if !matches!(result, CallResult::None) {
                return Err(SimError::Protocol(format!(
                    "non-deferrable call in batch: {call:?}"
                )));
            }
            total += t;
        }
        Ok((calls.len(), total))
    }

    /// Restarts the server process: clears all driver/GPU state (including
    /// sticky errors and driver corruption) and invalidates every physical
    /// handle. Fails if the GPU hardware itself is dead. Returns the
    /// restart cost.
    pub fn restart(&mut self) -> SimResult<SimTime> {
        self.gpu.reset_context()?;
        self.epoch += 1;
        Ok(self.gpu.cost_model().proxy_restart)
    }

    /// Replaces the attached device (hard-error migration to a new GPU):
    /// the worker keeps its proxy client; the server comes back over a
    /// replacement device on the new node.
    pub fn attach_new_gpu(&mut self, gpu: Gpu) {
        self.gpu = gpu;
        self.epoch += 1;
    }

    /// Restart epoch (increments on every restart / re-attach).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The device, read-only.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// The device, mutable (recovery resets, fault injection).
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        &mut self.gpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::cost::CostModel;
    use simcore::failure::FailureKind;
    use simcore::GpuId;
    use simgpu::{AllocSite, BufferTag, GpuHealth};

    fn server() -> ProxyServer {
        ProxyServer::new(Gpu::new(GpuId(0), CostModel::v100()))
    }

    #[test]
    fn restart_clears_sticky_state_and_bumps_epoch() -> SimResult<()> {
        let mut s = server();
        s.exec(&DeviceCall::Malloc {
            site: AllocSite::new("w", 4),
            elems: 4,
            logical_bytes: 16,
            tag: BufferTag::Param,
        })?;
        s.gpu_mut().inject(FailureKind::StickyCuda);
        assert!(s.exec(&DeviceCall::DeviceSync).is_err());
        let t = s.restart()?;
        assert!(t.as_secs() > 0.0);
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.gpu().health(), GpuHealth::Healthy);
        assert_eq!(s.gpu().buffer_count(), 0, "context teardown drops buffers");
        assert!(s.exec(&DeviceCall::DeviceSync).is_ok());
        Ok(())
    }

    #[test]
    fn restart_cannot_fix_dead_hardware() {
        let mut s = server();
        s.gpu_mut().inject(FailureKind::GpuHardware);
        assert!(s.restart().is_err());
        // Migration to a new device does.
        s.attach_new_gpu(Gpu::new(GpuId(9), CostModel::v100()));
        assert_eq!(s.epoch(), 1);
        assert!(s.exec(&DeviceCall::DeviceSync).is_ok());
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use simcore::cost::CostModel;
    use simcore::GpuId;
    use simgpu::{AllocSite, BufferId, BufferTag, KernelKind};

    fn server() -> ProxyServer {
        ProxyServer::new(Gpu::new(GpuId(0), CostModel::v100()))
    }

    fn alloc(s: &mut ProxyServer, elems: u64) -> SimResult<BufferId> {
        match s
            .exec(&DeviceCall::Malloc {
                site: AllocSite::new("b", elems),
                elems,
                logical_bytes: elems * 4,
                tag: BufferTag::Activation,
            })?
            .0
        {
            CallResult::Buffer(b) => Ok(b),
            other => Err(SimError::Protocol(format!(
                "expected buffer, got {other:?}"
            ))),
        }
    }

    #[test]
    fn batch_frame_round_trips() -> SimResult<()> {
        let calls = vec![
            DeviceCall::Upload {
                buf: BufferId(7),
                data: vec![1.0; 300],
            },
            DeviceCall::Free { buf: BufferId(7) },
        ];
        // Tiny shard payload: the upload straddles several frames.
        let frame = encode_batch(&calls, 64);
        assert_eq!(decode_batch(&frame)?, calls);
        Ok(())
    }

    #[test]
    fn empty_batch_round_trips() -> SimResult<()> {
        let frame = encode_batch(&[], BATCH_SHARD_BYTES);
        assert!(decode_batch(&frame)?.is_empty());
        Ok(())
    }

    #[test]
    fn exec_batch_matches_per_call_execution() -> SimResult<()> {
        let mut a = server();
        let mut b = server();
        // Physical ids come from a process-global counter, so each
        // server builds the same logical program over its own handles.
        let stream_of = |s: &mut ProxyServer| match s.exec(&DeviceCall::StreamCreate) {
            Ok((CallResult::Stream(st), _)) => Ok(st),
            other => Err(SimError::Protocol(format!(
                "expected stream, got {other:?}"
            ))),
        };
        let (ba, sa) = (alloc(&mut a, 8)?, stream_of(&mut a)?);
        let (bb, sb) = (alloc(&mut b, 8)?, stream_of(&mut b)?);
        let program = |buf: BufferId, stream| {
            vec![
                DeviceCall::Upload {
                    buf,
                    data: vec![2.0; 8],
                },
                DeviceCall::Launch {
                    stream,
                    kernel: KernelKind::Scale { x: buf, alpha: 3.0 },
                },
            ]
        };
        let mut per_call = SimTime::ZERO;
        for c in &program(ba, sa) {
            per_call += a.exec(c)?.1;
        }
        let (n, batched) = b.exec_batch(&encode_batch(&program(bb, sb), BATCH_SHARD_BYTES))?;
        assert_eq!(n, 2);
        assert_eq!(batched, per_call, "batching must not change virtual time");
        let download = |s: &mut ProxyServer, buf| match s.exec(&DeviceCall::Download { buf }) {
            Ok((CallResult::Data(d), _)) => Ok(d),
            other => Err(SimError::Protocol(format!("expected data, got {other:?}"))),
        };
        assert_eq!(
            download(&mut a, ba)?,
            download(&mut b, bb)?,
            "batched and per-call execution reach identical device state"
        );
        Ok(())
    }

    #[test]
    fn exec_batch_rejects_result_producing_calls() {
        let mut s = server();
        let calls = vec![DeviceCall::Malloc {
            site: AllocSite::new("b", 4),
            elems: 4,
            logical_bytes: 16,
            tag: BufferTag::Param,
        }];
        assert!(s
            .exec_batch(&encode_batch(&calls, BATCH_SHARD_BYTES))
            .is_err());
    }

    #[test]
    fn corrupt_batch_frame_is_rejected() {
        let calls = vec![DeviceCall::DeviceSync];
        let mut raw = encode_batch(&calls, BATCH_SHARD_BYTES).to_vec();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xff;
        let frame = Bytes::copy_from_slice(&raw);
        assert!(decode_batch(&frame).is_err(), "CRC must catch corruption");
    }
}

//! The restartable device proxy server.
//!
//! In the real system (Figure 2) the proxy server is a separate OS process
//! holding the CUDA context, NCCL communicators, and all driver state;
//! the worker process talks to it over shared memory. Its one superpower
//! is being *disposable*: killing and restarting it clears corrupted
//! GPU/driver software state without perturbing the worker (§4.2.1 cases
//! 2–3), and keeps the worker CPU image CRIU-friendly (§4.3).
//!
//! In the simulation the "process" is a restartable state machine around
//! the device: [`ProxyServer::restart`] tears down the context (dropping
//! every buffer, stream, and event — exactly what a context teardown does)
//! and bumps the epoch so stale physical handles are detectable.

use simcore::{SimResult, SimTime};
use simgpu::{CallResult, DeviceCall, Gpu};

/// The device proxy server: owns the GPU context for one rank.
#[derive(Debug)]
pub struct ProxyServer {
    gpu: Gpu,
    epoch: u32,
}

impl ProxyServer {
    /// Starts a server over a freshly attached device.
    pub fn new(gpu: Gpu) -> Self {
        ProxyServer { gpu, epoch: 0 }
    }

    /// Executes one device call, returning the result and its virtual
    /// duration.
    pub fn exec(&mut self, call: &DeviceCall) -> SimResult<(CallResult, SimTime)> {
        self.gpu.exec(call)
    }

    /// Restarts the server process: clears all driver/GPU state (including
    /// sticky errors and driver corruption) and invalidates every physical
    /// handle. Fails if the GPU hardware itself is dead. Returns the
    /// restart cost.
    pub fn restart(&mut self) -> SimResult<SimTime> {
        self.gpu.reset_context()?;
        self.epoch += 1;
        Ok(self.gpu.cost_model().proxy_restart)
    }

    /// Replaces the attached device (hard-error migration to a new GPU):
    /// the worker keeps its proxy client; the server comes back over a
    /// replacement device on the new node.
    pub fn attach_new_gpu(&mut self, gpu: Gpu) {
        self.gpu = gpu;
        self.epoch += 1;
    }

    /// Restart epoch (increments on every restart / re-attach).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The device, read-only.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// The device, mutable (recovery resets, fault injection).
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        &mut self.gpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::cost::CostModel;
    use simcore::failure::FailureKind;
    use simcore::GpuId;
    use simgpu::{AllocSite, BufferTag, GpuHealth};

    fn server() -> ProxyServer {
        ProxyServer::new(Gpu::new(GpuId(0), CostModel::v100()))
    }

    #[test]
    fn restart_clears_sticky_state_and_bumps_epoch() -> SimResult<()> {
        let mut s = server();
        s.exec(&DeviceCall::Malloc {
            site: AllocSite::new("w", 4),
            elems: 4,
            logical_bytes: 16,
            tag: BufferTag::Param,
        })?;
        s.gpu_mut().inject(FailureKind::StickyCuda);
        assert!(s.exec(&DeviceCall::DeviceSync).is_err());
        let t = s.restart()?;
        assert!(t.as_secs() > 0.0);
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.gpu().health(), GpuHealth::Healthy);
        assert_eq!(s.gpu().buffer_count(), 0, "context teardown drops buffers");
        assert!(s.exec(&DeviceCall::DeviceSync).is_ok());
        Ok(())
    }

    #[test]
    fn restart_cannot_fix_dead_hardware() {
        let mut s = server();
        s.gpu_mut().inject(FailureKind::GpuHardware);
        assert!(s.restart().is_err());
        // Migration to a new device does.
        s.attach_new_gpu(Gpu::new(GpuId(9), CostModel::v100()));
        assert_eq!(s.epoch(), 1);
        assert!(s.exec(&DeviceCall::DeviceSync).is_ok());
    }
}

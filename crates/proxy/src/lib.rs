//! Device proxy and interception layer.
//!
//! The transparent JIT design (§4, Figure 2 of the paper) separates the
//! worker CPU process from all GPU/driver state by routing every device
//! API through a *device proxy server*. The client side intercepts calls,
//! hands the application **virtual handles**, and logs every call (with
//! input values) into a per-minibatch **replay log**. That buys three
//! capabilities:
//!
//! 1. restarting the proxy server clears corrupted GPU/driver state
//!    without touching worker CPU state (which CRIU can then migrate);
//! 2. recovery can reset the GPU to minibatch start and *replay* the log,
//!    remapping virtual handles onto freshly created physical objects;
//! 3. errors never reach the framework/application — the interception
//!    layer catches them, runs a pluggable [`RecoveryHandler`], and
//!    returns the original call's result as if nothing happened.
//!
//! Modules:
//!
//! * [`executor`] — the [`Executor`] trait (the seam the training
//!   framework runs against) and [`DirectExecutor`] (no interception —
//!   the baseline and user-level-JIT path);
//! * [`server`] — the restartable [`ProxyServer`] owning the device;
//! * [`oplog`] — logged operations and the virtual-handle map;
//! * [`client`] — [`ProxyClient`]: interception, logging, replay, and
//!   replay-log correctness verification (§4.1);
//! * [`watchdog`] — real-time hang detection over collective tickets.

pub mod client;
pub mod executor;
pub mod oplog;
pub mod server;
pub mod watchdog;

pub use client::{MinibatchPosition, ProxyClient, RecoveryHandler, RecoveryOutcome};
pub use executor::{CommToken, DirectExecutor, Executor, PendingOp, PersistentSnapshot};
pub use oplog::{LoggedOp, OpLog, OpRing, VirtualMap};
pub use server::{decode_batch, encode_batch, ProxyServer, BATCH_SHARD_BYTES};
pub use watchdog::Watchdog;

//! Finding representation and the text/JSON output formats.

use std::fmt::Write as _;
use std::path::PathBuf;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the analysis root.
    pub file: PathBuf,
    /// 1-indexed line.
    pub line: usize,
    /// Rule name (`panic_path`, `lock_order`, …).
    pub rule: String,
    /// Human-oriented explanation with the suggested remedy.
    pub message: String,
}

/// Renders findings as `file:line: [rule] message` lines plus a summary.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "{}:{}: [{}] {}",
            f.file.display(),
            f.line,
            f.rule,
            f.message
        );
    }
    if findings.is_empty() {
        out.push_str("jitlint: no findings\n");
    } else {
        let _ = writeln!(
            out,
            "jitlint: {} finding{}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
    }
    out
}

/// Renders findings as a JSON array (hand-rolled; the analyzer is
/// std-only by design).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape_json(&f.file.display().to_string()),
            f.line,
            escape_json(&f.rule),
            escape_json(&f.message)
        );
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            file: PathBuf::from("crates/core/src/checkpoint.rs"),
            line: 7,
            rule: "panic_path".into(),
            message: "a \"quoted\" message".into(),
        }
    }

    #[test]
    fn text_format() {
        let text = render_text(&[finding()]);
        assert!(text.contains("crates/core/src/checkpoint.rs:7: [panic_path]"));
        assert!(text.contains("jitlint: 1 finding\n"));
        assert_eq!(render_text(&[]), "jitlint: no findings\n");
    }

    #[test]
    fn json_format_escapes() {
        let json = render_json(&[finding()]);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"line\": 7"));
        assert_eq!(render_json(&[]), "[]\n");
    }
}

//! `--witness` mode: diff a runtime lock-witness trace against the
//! static acquisition graph.
//!
//! The `lock_witness` feature of `simcore::sync` records what a test run
//! *actually did* — observed lock-order edges, condvar parks, and
//! notifies with their held/unheld state — to the file named by
//! `JIT_LOCK_WITNESS`. This module resolves those records back to static
//! graph nodes via [`lock_order::Graph::sites`] and reports:
//!
//! * **hard findings** — a runtime edge between two *library* acquisition
//!   sites that the static graph does not contain (an analyzer blind
//!   spot: the fixpoint missed a caller→callee path, or a closure/field
//!   indirection defeated name resolution), and a `notify` that ran with
//!   no mutex held at a library site (the PR-5 lost-wakeup shape,
//!   dynamically confirmed);
//! * **informational lines** — static edges no test exercised (coverage
//!   gaps), and records whose sites the static index cannot resolve
//!   (`parts[i].lock()`-style receivers are invisible to both sides, so
//!   an unresolved record is consistent blindness, not a contradiction).
//!
//! Record grammar, one per line (see `crates/simcore/src/sync.rs`):
//!
//! ```text
//! edge <file:line> <file:line>
//! wait <file:line>
//! notify <file:line> held|unheld
//! ```

use crate::report::Finding;
use crate::rules::lock_order;
use crate::source::{FileKind, SourceFile};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Rule name carried by witness findings.
pub const RULE: &str = "lock_witness";

/// Outcome of the cross-check.
#[derive(Debug, Default)]
pub struct WitnessReport {
    /// Hard failures: unpredicted library-to-library edges, unheld
    /// notifies at library sites.
    pub findings: Vec<Finding>,
    /// Coverage and resolution notes, one line each.
    pub info: Vec<String>,
    /// Runtime edges parsed from the trace.
    pub runtime_edges: usize,
    /// Runtime edges whose endpoints both resolved to static nodes.
    pub resolved_edges: usize,
    /// Condvar parks recorded.
    pub waits: usize,
}

/// Cross-checks `trace` (the contents of a `JIT_LOCK_WITNESS` file)
/// against the static graph of `files`.
pub fn check_witness(files: &[SourceFile], trace: &str) -> WitnessReport {
    let graph = lock_order::build_graph(files, None);
    let mut report = WitnessReport::default();
    // Static (from, to) node pairs some runtime edge landed on.
    let mut exercised: BTreeSet<(String, String)> = BTreeSet::new();

    for (lineno, raw) in trace.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("edge") => {
                let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
                    report
                        .info
                        .push(format!("witness:{}: malformed edge record", lineno + 1));
                    continue;
                };
                report.runtime_edges += 1;
                check_edge(&graph, a, b, &mut exercised, &mut report);
            }
            Some("wait") => {
                report.waits += 1;
            }
            Some("notify") => {
                let (Some(site), Some(state)) = (parts.next(), parts.next()) else {
                    report
                        .info
                        .push(format!("witness:{}: malformed notify record", lineno + 1));
                    continue;
                };
                if state == "unheld" {
                    check_unheld_notify(files, site, &mut report);
                }
            }
            Some(other) => {
                report.info.push(format!(
                    "witness:{}: unknown record kind `{other}`",
                    lineno + 1
                ));
            }
            None => {}
        }
    }

    // Static edges no runtime edge landed on: coverage gaps, not errors —
    // the graph is deliberately an over-approximation.
    for ((from, to), w) in &graph.edges {
        if !exercised.contains(&(from.clone(), to.clone())) {
            report.info.push(format!(
                "unexercised static edge `{from}` -> `{to}` (witness: {} at {}:{})",
                w.function,
                w.file.display(),
                w.to_line
            ));
        }
    }

    // Each test process appends its own deduplicated records, so the
    // merged trace repeats lines; one finding per distinct site is enough.
    report.findings.sort();
    report.findings.dedup();
    report.info.sort();
    report.info.dedup();
    report
}

/// Resolves one runtime edge and classifies it.
fn check_edge(
    graph: &lock_order::Graph,
    a: &str,
    b: &str,
    exercised: &mut BTreeSet<(String, String)>,
    report: &mut WitnessReport,
) {
    let (Some((fa, la)), Some((fb, lb))) = (parse_site(a), parse_site(b)) else {
        report.info.push(format!("unparseable edge `{a}` `{b}`"));
        return;
    };
    let sa = graph.sites.get(&(fa.clone(), la));
    let sb = graph.sites.get(&(fb.clone(), lb));
    let (Some(sa), Some(sb)) = (sa, sb) else {
        // Unresolvable receiver (`parts[i].lock()`, local temporaries):
        // the static side has no node for it either — consistent
        // blindness, reported but not fatal.
        report.info.push(format!(
            "runtime edge {a} -> {b} has no static site for {}",
            if sa.is_none() { a } else { b }
        ));
        return;
    };
    report.resolved_edges += 1;
    if sa.node == sb.node {
        // Two instances of the same field (e.g. striped shards): the
        // static graph collapses them to one node and cannot order them.
        return;
    }
    exercised.insert((sa.node.clone(), sb.node.clone()));
    if graph
        .edges
        .contains_key(&(sa.node.clone(), sb.node.clone()))
    {
        return;
    }
    if !(sa.lib && sb.lib) {
        // Test-code acquisitions are excluded from the static graph by
        // design; an unpredicted edge touching one is expected.
        report.info.push(format!(
            "test-code runtime edge `{}` -> `{}` ({a} -> {b}) not in static graph",
            sa.node, sb.node
        ));
        return;
    }
    report.findings.push(Finding {
        rule: RULE.into(),
        file: fa,
        line: la,
        message: format!(
            "runtime lock-order edge `{}` -> `{}` (acquired {a}, then {b}) \
             is missing from the static graph — the analyzer has a blind \
             spot here; the cycle check cannot be trusted until the edge \
             is visible statically",
            sa.node, sb.node
        ),
    });
}

/// A `notify … unheld` record at a library (non-test) site is the PR-5
/// lost-wakeup shape observed live; fail unless the site carries a
/// `notify_under_lock` allow.
fn check_unheld_notify(files: &[SourceFile], site: &str, report: &mut WitnessReport) {
    let Some((path, line)) = parse_site(site) else {
        report
            .info
            .push(format!("unparseable notify site `{site}`"));
        return;
    };
    let Some(file) = files.iter().find(|f| f.rel_path == path) else {
        report
            .info
            .push(format!("notify site {site} is outside the workspace"));
        return;
    };
    if file.kind != FileKind::Lib || file.is_test_line(line) {
        return;
    }
    if file
        .allowed(crate::rules::concurrency::NOTIFY, line)
        .is_some()
    {
        return;
    }
    report.findings.push(Finding {
        rule: RULE.into(),
        file: path,
        line,
        message: "notify observed at runtime with no mutex held — a waiter \
                  between its predicate check and its park misses this wake \
                  (the lost-wakeup race, dynamically confirmed)"
            .into(),
    });
}

/// Splits `path:line` (the line is after the *last* colon, so Windows
/// drive letters and `::` never confuse it).
fn parse_site(s: &str) -> Option<(PathBuf, usize)> {
    let (path, line) = s.rsplit_once(':')?;
    Some((PathBuf::from(path), line.parse().ok()?))
}

/// Renders the report for terminal use; findings come first, then a
/// summary with the informational lines.
pub fn render_text(report: &WitnessReport) -> String {
    let mut out = crate::report::render_text(&report.findings);
    let _ = writeln!(
        out,
        "witness: {} runtime edge(s), {} resolved, {} wait(s), {} note(s)",
        report.runtime_edges,
        report.resolved_edges,
        report.waits,
        report.info.len()
    );
    for line in &report.info {
        let _ = writeln!(out, "  note: {line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(crate_dir: &str, module: &str, text: &str) -> SourceFile {
        SourceFile::parse(
            PathBuf::from(format!("crates/{crate_dir}/src/{module}.rs")),
            crate_dir.into(),
            module.into(),
            text,
        )
    }

    #[test]
    fn predicted_edge_passes_unpredicted_edge_fails() {
        // Static: f orders x before y. Runtime trace 1 agrees; trace 2
        // reverses it, which the graph does not contain.
        let f1 = file(
            "core",
            "a",
            "fn f(&self) {\n    let g = self.x.lock();\n    let h = self.y.lock();\n}\n",
        );
        let files = [f1];
        let ok = check_witness(
            &files,
            "edge crates/core/src/a.rs:2 crates/core/src/a.rs:3\n",
        );
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
        assert_eq!(ok.resolved_edges, 1);

        let bad = check_witness(
            &files,
            "edge crates/core/src/a.rs:3 crates/core/src/a.rs:2\n",
        );
        assert_eq!(bad.findings.len(), 1);
        assert!(bad.findings[0].message.contains("missing from the static"));
    }

    #[test]
    fn unresolved_sites_are_notes_not_findings() {
        let f1 = file(
            "core",
            "a",
            "fn f(&self) {\n    let g = self.x.lock();\n}\n",
        );
        let r = check_witness(
            &[f1],
            "edge crates/core/src/a.rs:2 crates/core/src/nosuch.rs:9\n",
        );
        assert!(r.findings.is_empty());
        assert_eq!(r.resolved_edges, 0);
        assert!(r.info.iter().any(|l| l.contains("no static site")));
    }

    #[test]
    fn unexercised_static_edges_reported_as_notes() {
        let f1 = file(
            "core",
            "a",
            "fn f(&self) {\n    let g = self.x.lock();\n    let h = self.y.lock();\n}\n",
        );
        let r = check_witness(&[f1], "");
        assert!(r.findings.is_empty());
        assert!(r
            .info
            .iter()
            .any(|l| l.contains("unexercised static edge `core::x` -> `core::y`")));
    }

    #[test]
    fn unheld_notify_in_lib_fails_held_passes() {
        let f1 = file("core", "a", "fn f(&self) {\n    self.cv.notify_all();\n}\n");
        let files = [f1];
        let bad = check_witness(&files, "notify crates/core/src/a.rs:2 unheld\n");
        assert_eq!(bad.findings.len(), 1);
        let ok = check_witness(&files, "notify crates/core/src/a.rs:2 held\n");
        assert!(ok.findings.is_empty());
    }
}

//! `jitlint` CLI.
//!
//! ```text
//! cargo run -p lint --                     # text report, exit 1 on findings
//! cargo run -p lint -- --format json       # machine-readable output
//! cargo run -p lint -- --fix-allow         # insert TODO allow directives
//! cargo run -p lint -- --root <path>       # analyze another workspace root
//! cargo run -p lint -- --witness <trace>   # diff a runtime lock trace
//!                                          # against the static graph
//! ```
//!
//! `--witness` replaces the normal rule run: it resolves the records a
//! `lock_witness`-instrumented test run wrote to `JIT_LOCK_WITNESS`
//! against the static acquisition graph and fails on edges the analyzer
//! did not predict (see `lint::witness`).

use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    format: Format,
    fix_allow: bool,
    witness: Option<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn usage() -> &'static str {
    "usage: jitlint [--format text|json] [--fix-allow] [--root <path>] [--witness <trace>]"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: find_workspace_root()?,
        format: Format::Text,
        fix_allow: false,
        witness: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                let value = args.next().ok_or("--format needs a value")?;
                opts.format = match value.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                };
            }
            "--fix-allow" => opts.fix_allow = true,
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a value")?);
            }
            "--witness" => {
                opts.witness = Some(PathBuf::from(
                    args.next().ok_or("--witness needs a trace file path")?,
                ));
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(opts)
}

/// Walks up from the current directory to the first one containing a
/// `crates/` directory (so the tool works from any workspace subdir).
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        if dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no `crates/` directory found above the current directory; \
                        pass --root <path>"
                .to_string());
        }
    }
}

fn run_witness(opts: &Options, trace_path: &PathBuf) -> ExitCode {
    let trace = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "jitlint: failed to read witness trace {}: {e}\n\
                 (run the tests with JIT_LOCK_WITNESS={} and \
                 --features simcore/lock_witness first)",
                trace_path.display(),
                trace_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let files = match lint::load_workspace(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "jitlint: failed to read workspace at {}: {e}",
                opts.root.display()
            );
            return ExitCode::from(2);
        }
    };
    let report = lint::witness::check_witness(&files, &trace);
    match opts.format {
        Format::Text => print!("{}", lint::witness::render_text(&report)),
        Format::Json => print!("{}", lint::report::render_json(&report.findings)),
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(trace_path) = opts.witness.clone() {
        return run_witness(&opts, &trace_path);
    }
    let findings = match lint::analyze(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "jitlint: failed to read workspace at {}: {e}",
                opts.root.display()
            );
            return ExitCode::from(2);
        }
    };
    if opts.fix_allow {
        match lint::apply_fix_allow(&opts.root, &findings) {
            Ok(n) => eprintln!("jitlint: inserted {n} allow directive(s); edit the TODO reasons"),
            Err(e) => {
                eprintln!("jitlint: --fix-allow failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    match opts.format {
        Format::Text => print!("{}", lint::report::render_text(&findings)),
        Format::Json => print!("{}", lint::report::render_json(&findings)),
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

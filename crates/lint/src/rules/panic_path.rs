//! `panic_path` — recovery-critical modules must not contain reachable
//! panic sites.
//!
//! The premise of JIT checkpointing (§3–§4) is that the *recovery path
//! itself never fails*: when a rank dies at the all-reduce barrier, the
//! watchdog → checkpoint-writer → replay-log pipeline is the only thing
//! standing between "one lost minibatch" and "whole-job restart from an
//! hours-old checkpoint". A stray `unwrap()` in that pipeline converts a
//! recoverable fault into exactly the failure class the paper exists to
//! remove. This rule bans `unwrap()` / `expect()` / `panic!` / `todo!` /
//! `unimplemented!` / `unsafe` in the modules that implement the paper's
//! recovery machinery — *including their test modules*, because recovery
//! tests are rehearsals of the failure path and should surface errors as
//! `Result`s, not aborts.
//!
//! Genuinely-infallible sites are suppressed with an explicit
//! `// jitlint::allow(panic_path): <why it cannot fail>`.

use crate::report::Finding;
use crate::source::{find_word, FileKind, SourceFile};

/// Rule name used in findings and allow directives.
pub const RULE: &str = "panic_path";

/// `(crate_dir, module)` pairs the rule applies to; `"*"` = all modules.
pub const RECOVERY_CRITICAL: &[(&str, &str)] = &[
    ("core", "checkpoint"),
    ("core", "stream"),
    ("core", "user_level"),
    ("core", "transparent"),
    ("proxy", "*"),
    ("cluster", "store"),
    ("baselines", "periodic"),
];

/// Whether the rule applies to this file. Integration tests and examples
/// are out of scope: a `crates/proxy/tests/*.rs` harness may unwrap
/// freely — only the library's recovery path is held to the no-panic
/// bar. (In-file `#[cfg(test)]` modules of recovery-critical libraries
/// stay covered, as before.)
pub fn in_scope(file: &SourceFile) -> bool {
    file.kind == FileKind::Lib
        && RECOVERY_CRITICAL
            .iter()
            .any(|(c, m)| *c == file.crate_dir && (*m == "*" || *m == file.module))
}

/// Forbidden constructs: `(needle, must_be_word, description)`.
/// Non-word needles are matched as exact substrings of masked code.
const FORBIDDEN: &[(&str, bool, &str)] = &[
    (".unwrap()", false, "unwrap() can panic"),
    (".expect(", false, "expect() can panic"),
    ("panic!", false, "explicit panic"),
    ("todo!", false, "todo! placeholder"),
    ("unimplemented!", false, "unimplemented! placeholder"),
    ("unsafe", true, "unsafe code is banned on the recovery path"),
];

/// Scans one file.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !in_scope(file) {
        return;
    }
    for (idx, masked) in file.masked.iter().enumerate() {
        let line = idx + 1;
        for (needle, word, what) in FORBIDDEN {
            let hit = if *word {
                find_word(masked, needle, 0).is_some()
            } else {
                masked.contains(needle)
            };
            if !hit {
                continue;
            }
            if file.allowed(RULE, line).is_some() {
                continue;
            }
            findings.push(Finding {
                rule: RULE.into(),
                file: file.rel_path.clone(),
                line,
                message: format!(
                    "{what} in recovery-critical module `{}::{}` — propagate an error \
                     or justify with `// jitlint::allow({RULE}): <reason>`",
                    file.crate_dir, file.module
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(crate_dir: &str, module: &str) -> SourceFile {
        SourceFile::parse(
            PathBuf::from(format!("crates/{crate_dir}/src/{module}.rs")),
            crate_dir.into(),
            module.into(),
            "",
        )
    }

    #[test]
    fn proxy_wildcard_covers_the_replay_log_hot_path() {
        // The arena-backed oplog and deferred-submission ring are the
        // recovery path's data plane; a panic there is exactly the
        // failure class this rule exists to ban. Guard against the
        // wildcard entry being narrowed without noticing.
        for module in ["oplog", "client", "server", "executor", "watchdog"] {
            assert!(
                in_scope(&file("proxy", module)),
                "proxy::{module} must stay recovery-critical"
            );
        }
        assert!(in_scope(&file("core", "checkpoint")));
        assert!(
            !in_scope(&file("bench", "proxy")),
            "benches are out of scope"
        );
    }
}

//! The four `jitlint` rule families.
//!
//! Each rule maps a paper invariant to a machine check (section numbers
//! refer to *Just-In-Time Checkpointing*, EuroSys '24):
//!
//! | rule | invariant | paper |
//! |---|---|---|
//! | `panic_path` | the recovery path never panics | §3.1 watchdog, §4 proxy |
//! | `lock_order` | watchdog/trainer lock acquisition is cycle-free | §3.1 hang detection |
//! | `virtual_time` | simulation code never blocks on wall-clock sleeps | §6 methodology |
//! | `checkpoint_schema` | persisted state declares a schema version | §3.2 metadata, §4.1 replay logs |

pub mod lock_order;
pub mod panic_path;
pub mod schema;
pub mod virtual_time;

use crate::report::Finding;
use crate::source::SourceFile;

/// Scans every file-local rule over `files` and appends findings.
pub fn run_file_rules(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for file in files {
        panic_path::check(file, findings);
        virtual_time::check(file, findings);
        schema::check(file, findings);
        for (line, msg) in &file.malformed_allows {
            findings.push(Finding {
                rule: "allow_syntax".into(),
                file: file.rel_path.clone(),
                line: *line,
                message: msg.clone(),
            });
        }
    }
}

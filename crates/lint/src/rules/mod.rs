//! The `jitlint` rule families.
//!
//! Each rule maps a paper invariant to a machine check (section numbers
//! refer to *Just-In-Time Checkpointing*, EuroSys '24):
//!
//! | rule | invariant | paper |
//! |---|---|---|
//! | `panic_path` | the recovery path never panics | §3.1 watchdog, §4 proxy |
//! | `lock_order` | workspace lock acquisition is cycle-free (interprocedural) | §3.1 hang detection |
//! | `guard_across_call` | no guard held across calls into other locking modules | §3.1 hang detection |
//! | `virtual_time` | simulation code never blocks on wall-clock sleeps | §6 methodology |
//! | `checkpoint_schema` | persisted state declares a schema version | §3.2 metadata, §4.1 replay logs |
//! | `condvar_wait_loop` | every condvar wait re-checks its predicate in a loop | §3.1 rendezvous |
//! | `notify_under_lock` | every notify holds the predicate's mutex (PR-5 bug class) | §3.1 rendezvous |
//! | `blocking_under_lock` | nothing blocks while holding an unrelated mutex | §3.1 hang detection |
//!
//! Plus two meta checks: `allow_syntax` (malformed suppressions) and
//! `unused_allow` (suppressions whose rule no longer fires).

pub mod body;
pub mod concurrency;
pub mod lock_order;
pub mod panic_path;
pub mod schema;
pub mod virtual_time;

use crate::report::Finding;
use crate::source::SourceFile;

/// Every rule name `jitlint::allow` may reference.
pub const ALL_RULES: &[&str] = &[
    panic_path::RULE,
    lock_order::RULE,
    lock_order::ACROSS_CALL,
    virtual_time::RULE,
    schema::RULE,
    concurrency::WAIT_LOOP,
    concurrency::NOTIFY,
    concurrency::BLOCKING,
];

/// Scans every file-local rule over `files` and appends findings.
pub fn run_file_rules(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for file in files {
        panic_path::check(file, findings);
        virtual_time::check(file, findings);
        schema::check(file, findings);
        for (line, msg) in &file.malformed_allows {
            findings.push(Finding {
                rule: "allow_syntax".into(),
                file: file.rel_path.clone(),
                line: *line,
                message: msg.clone(),
            });
        }
    }
    concurrency::check(files, findings);
}

/// Reports `jitlint::allow` directives that suppressed nothing this run.
/// Must be called after every other rule so `allow_hits` is complete.
/// Keeps the suppression inventory honest: when a refactor removes the
/// violation, the stale directive is flagged instead of silently
/// blessing whatever lands on that line next.
pub fn check_unused_allows(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for file in files {
        let hits = file.allow_hits.borrow();
        for allow in &file.allows {
            for rule in &allow.rules {
                if hits.contains(&(allow.comment_line, rule.clone())) {
                    continue;
                }
                findings.push(Finding {
                    rule: "unused_allow".into(),
                    file: file.rel_path.clone(),
                    line: allow.comment_line,
                    message: format!(
                        "`jitlint::allow({rule})` suppresses nothing — the \
                         violation is gone; delete the directive (or it will \
                         silently bless the next edit of line {})",
                        allow.target_line
                    ),
                });
            }
        }
    }
}

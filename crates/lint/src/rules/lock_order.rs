//! `lock_order` + `guard_across_call` — interprocedural lock-acquisition
//! analysis.
//!
//! The watchdog (§3.1) fires while trainer threads are parked at the
//! all-reduce barrier holding their own locks; the checkpoint writer then
//! walks shared state from a different thread. If function A acquires
//! lock `x` then `y` while function B acquires `y` then `x`, the
//! watchdog-vs-trainer interleaving can deadlock — silently, at failure
//! time, which is the one moment the system must make progress.
//!
//! The analysis extracts per-function acquisition sequences of
//! `.lock()`/`.read()`/`.write()` on named fields, merges them into a
//! workspace-wide acquisition graph keyed `crate::field`, and reports
//! every strongly-connected component with ≥ 2 locks, with one witness
//! edge per graph edge.
//!
//! Since PR 6 the graph is **interprocedural**: each function's
//! transitive lock set is propagated caller→callee to a fixpoint (callees
//! resolved by name, unioning every same-named body so dyn-trait dispatch
//! is covered), and a guard held across a call contributes an edge from
//! the guard's lock to everything the callee may acquire. The companion
//! rule `guard_across_call` flags the risky shape directly: a guard held
//! across a call into a *different module* that takes locks of its own —
//! narrow the guard (clone what you need, drop, then call) or suppress
//! with a reason.
//!
//! Conservative by construction: a guard dropped before the next
//! acquisition still orders the pair within one function — split the
//! function if the order is intentional, or suppress the specific
//! acquisition with `// jitlint::allow(lock_order): <reason>`.

use super::body::{condvar_names, Body};
use crate::report::Finding;
use crate::source::{FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Rule name used in findings and allow directives.
pub const RULE: &str = "lock_order";
/// Rule name for guards held across calls into other locking modules.
pub const ACROSS_CALL: &str = "guard_across_call";

/// Method names too common to attribute by bare name: `map.len()` is not
/// `Store::len()`, `mail.inbox.get(..)` is not `SharedStore::get()`, and
/// `Arc::new` is not any workspace constructor. Resolving these by name
/// unions every same-named function's lock set into every call site,
/// flooding the graph with phantom edges (and phantom cycles). They are
/// skipped entirely; the runtime lock witness (`--witness`) is the
/// backstop that catches a real edge this blindness would hide.
const UBIQUITOUS_METHODS: &[&str] = &[
    "new",
    "default",
    "with_capacity",
    "from",
    "into",
    "to_string",
    "to_vec",
    "unwrap_or_else",
    "map",
    "and_then",
    "ok_or_else",
    "len",
    "is_empty",
    "clear",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "next",
    "clone",
    "drain",
    "retain",
    "extend",
    "keys",
    "values",
    "entry",
    "take",
    "replace",
    "append",
    "sort",
    "first",
    "last",
    "split_off",
];

/// Sync-primitive method names that must not resolve through the call
/// graph: `x.lock()` is already modeled as a *direct acquisition* of
/// `x` by the caller (ACQ_PATTERNS), so resolving it by bare name to the
/// instrumented wrapper in `simcore::sync` would double-count the
/// acquisition and misattribute it to the wrapper's internal field.
const LOCK_PRIMITIVES: &[&str] = &[
    "lock",
    "try_lock",
    "read",
    "write",
    "try_read",
    "try_write",
    "wait",
    "wait_for",
    "wait_timeout",
    "wait_while",
    "notify_one",
    "notify_all",
];

/// A witness that `from` was acquired before `to` in some function.
#[derive(Debug, Clone)]
pub struct EdgeWitness {
    /// Acquired-first node (`crate::field`).
    pub from: String,
    /// Acquired-later node (`crate::field`).
    pub to: String,
    /// File containing the witness function.
    pub file: PathBuf,
    /// Function containing both acquisitions.
    pub function: String,
    /// Line of the earlier acquisition.
    pub from_line: usize,
    /// Line of the later acquisition (for interprocedural edges, the
    /// call site that reaches the later lock).
    pub to_line: usize,
}

/// A lock acquisition site, for resolving runtime witness records back
/// to static nodes.
#[derive(Debug, Clone)]
pub struct Site {
    /// Graph node (`crate::field`).
    pub node: String,
    /// Whether the site is library code (not `#[cfg(test)]`, not an
    /// integration test or example). The witness gap check only fails on
    /// edges whose both endpoints are library sites.
    pub lib: bool,
}

/// The workspace lock-acquisition graph plus the site index the
/// `--witness` mode resolves runtime records against.
#[derive(Debug, Default)]
pub struct Graph {
    /// before→after edges with one witness each.
    pub edges: BTreeMap<(String, String), EdgeWitness>,
    /// `(rel_path, line)` → acquisition site, for every resolvable
    /// `.lock()`/`.read()`/`.write()` in the workspace (test code
    /// included — runtime records from tests must still resolve).
    pub sites: BTreeMap<(PathBuf, usize), Site>,
}

/// Builds the interprocedural acquisition graph and, along the way,
/// reports `guard_across_call` findings (pass `None` to skip them, e.g.
/// in `--witness` mode where the caller only needs the graph).
pub fn build_graph(files: &[SourceFile], mut findings: Option<&mut Vec<Finding>>) -> Graph {
    let condvars = condvar_names(files);
    let mut graph = Graph::default();

    // Per-function facts for the fixpoint.
    struct CallFact {
        callee: String,
        receiver: Option<String>,
        qualifier: Option<String>,
        line: usize,
        /// Guards live across the call: (node, acq_line, binding name).
        live: Vec<(String, usize, Option<String>)>,
    }
    struct FnFacts {
        file_idx: usize,
        span_idx: usize,
        /// Direct acquisitions as graph nodes (lintable sites only).
        direct: BTreeSet<String>,
        calls: Vec<CallFact>,
    }
    let mut facts: Vec<FnFacts> = Vec::new();
    // Callee name → indices into `facts` (dyn dispatch: union all).
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();

    for (file_idx, file) in files.iter().enumerate() {
        for (span_idx, span) in file.functions.iter().enumerate() {
            let body = Body::build(file, span, &condvars);

            // Ordered lintable acquisitions → intra-function edges, the
            // pre-PR-6 behavior, kept verbatim: a guard dropped before
            // the next acquisition still orders the pair.
            let mut seq: Vec<(String, usize)> = Vec::new();
            for acq in &body.acquisitions {
                let Some(field) = &acq.field else { continue };
                let node = format!("{}::{field}", file.crate_dir);
                let lib = file.kind == FileKind::Lib && !file.is_test_line(acq.line);
                graph
                    .sites
                    .entry((file.rel_path.clone(), acq.line))
                    .or_insert(Site {
                        node: node.clone(),
                        lib,
                    });
                if file.is_test_line(acq.line) || file.allowed(RULE, acq.line).is_some() {
                    continue;
                }
                seq.push((node, acq.line));
            }
            for i in 0..seq.len() {
                for j in (i + 1)..seq.len() {
                    if seq[i].0 == seq[j].0 {
                        continue;
                    }
                    let key = (seq[i].0.clone(), seq[j].0.clone());
                    graph.edges.entry(key).or_insert_with(|| EdgeWitness {
                        from: seq[i].0.clone(),
                        to: seq[j].0.clone(),
                        file: file.rel_path.clone(),
                        function: qualified(span.impl_type.as_deref(), &span.name),
                        from_line: seq[i].1,
                        to_line: seq[j].1,
                    });
                }
            }

            // Call sites with the guards live across them.
            let mut calls: Vec<CallFact> = Vec::new();
            for call in &body.calls {
                if file.is_test_line(call.line)
                    || LOCK_PRIMITIVES.contains(&call.name.as_str())
                    || UBIQUITOUS_METHODS.contains(&call.name.as_str())
                    // A method chained on the acquisition itself operates
                    // on the locked data; its type is invisible here, so
                    // name resolution would union unrelated functions.
                    // The runtime witness covers whatever it really does.
                    || call.chained_on_lock
                {
                    continue;
                }
                let live: Vec<(String, usize, Option<String>)> = body
                    .live_guards_at(call.offset)
                    .iter()
                    .filter(|g| g.line > 0 && file.allowed(RULE, g.line).is_none())
                    .filter_map(|g| {
                        g.field
                            .as_ref()
                            .map(|f| (format!("{}::{f}", file.crate_dir), g.line, g.name.clone()))
                    })
                    .collect();
                // Calls with no guard held still matter: the fixpoint
                // propagates the callee's lock set through them (a
                // guardless hop in the middle of a call chain must not
                // break edge visibility for a guard-holding caller).
                calls.push(CallFact {
                    callee: call.name.clone(),
                    receiver: call.receiver.clone(),
                    qualifier: call.qualifier.clone(),
                    line: call.line,
                    live,
                });
            }

            let idx = facts.len();
            facts.push(FnFacts {
                file_idx,
                span_idx,
                direct: seq.into_iter().map(|(n, _)| n).collect(),
                calls,
            });
            by_name.entry(span.name.clone()).or_default().push(idx);
        }
    }

    // Name resolution: every same-named function (dyn dispatch unions
    // all impls), except `Type::method(…)` calls, which only match
    // functions inside `impl Type`.
    let resolve = |call: &CallFact| -> Vec<usize> {
        by_name
            .get(&call.callee)
            .into_iter()
            .flatten()
            .copied()
            .filter(|&j| match &call.qualifier {
                Some(q) => {
                    let span = &files[facts[j].file_idx].functions[facts[j].span_idx];
                    span.impl_type.as_deref() == Some(q.as_str())
                }
                None => true,
            })
            .collect()
    };

    // Fixpoint: L(f) = direct(f) ∪ ⋃ L(callee) over name-resolved callees.
    let mut lock_sets: Vec<BTreeSet<String>> = facts.iter().map(|f| f.direct.clone()).collect();
    loop {
        let mut changed = false;
        for i in 0..facts.len() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for call in &facts[i].calls {
                for j in resolve(call) {
                    for node in &lock_sets[j] {
                        if !lock_sets[i].contains(node) {
                            add.insert(node.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                lock_sets[i].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Interprocedural edges + guard_across_call findings.
    let mut flagged: BTreeSet<(PathBuf, usize)> = BTreeSet::new();
    for f in &facts {
        let file = &files[f.file_idx];
        let span = &file.functions[f.span_idx];
        for call in &f.calls {
            let (callee, receiver, call_line, live) =
                (&call.callee, &call.receiver, &call.line, &call.live);
            if live.is_empty() {
                continue;
            }
            let mut reaches: BTreeSet<String> = BTreeSet::new();
            let mut cross_module = false;
            for j in resolve(call) {
                let tf = &files[facts[j].file_idx];
                if lock_sets[j].is_empty() {
                    continue;
                }
                reaches.extend(lock_sets[j].iter().cloned());
                if tf.crate_dir != file.crate_dir || tf.module != file.module {
                    cross_module = true;
                }
            }
            if reaches.is_empty() {
                continue;
            }
            for (guard_node, guard_line, _) in live {
                for node in &reaches {
                    if node == guard_node {
                        continue;
                    }
                    let key = (guard_node.clone(), node.clone());
                    graph.edges.entry(key).or_insert_with(|| EdgeWitness {
                        from: guard_node.clone(),
                        to: node.clone(),
                        file: file.rel_path.clone(),
                        function: qualified(span.impl_type.as_deref(), &span.name),
                        from_line: *guard_line,
                        to_line: *call_line,
                    });
                }
            }
            // The finding itself: only for library code, only for calls
            // that leave the module, one per call line.
            if let Some(findings) = findings.as_deref_mut() {
                if file.kind != FileKind::Lib || !cross_module {
                    continue;
                }
                // A method on the guard itself (`g.health()`) operates on
                // already-locked data; only guards *other* than the
                // receiver count as held across the call.
                let held: Vec<&(String, usize, Option<String>)> = live
                    .iter()
                    .filter(|(_, _, name)| {
                        !(name.is_some() && name.as_deref() == receiver.as_deref())
                    })
                    .collect();
                let held_elsewhere = held.iter().any(|(g, _, _)| reaches.iter().any(|n| n != g));
                if !held_elsewhere {
                    continue;
                }
                if file.allowed(ACROSS_CALL, *call_line).is_some() {
                    continue;
                }
                if !flagged.insert((file.rel_path.clone(), *call_line)) {
                    continue;
                }
                findings.push(Finding {
                    rule: ACROSS_CALL.into(),
                    file: file.rel_path.clone(),
                    line: *call_line,
                    message: format!(
                        "guard on `{}` held across call to `{callee}` which \
                         may acquire {{{}}} — long holds across locking \
                         modules invite deadlock; narrow the guard (copy \
                         what you need, drop, then call)",
                        held.iter()
                            .map(|(g, _, _)| g.as_str())
                            .collect::<Vec<_>>()
                            .join("`, `"),
                        reaches
                            .iter()
                            .filter(|n| !held.iter().any(|(g, _, _)| &g == n))
                            .map(|n| format!("`{n}`"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }
    }

    graph
}

fn qualified(impl_type: Option<&str>, name: &str) -> String {
    match impl_type {
        Some(t) => format!("{t}::{name}"),
        None => name.to_string(),
    }
}

/// Builds the acquisition graph over all files and reports cycles plus
/// `guard_across_call` findings.
pub fn check(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let graph = build_graph(files, Some(findings));

    for cycle in find_cycles(&graph.edges) {
        let parts: Vec<String> = cycle
            .iter()
            .map(|w| {
                format!(
                    "`{}` then `{}` in {} ({}:{})",
                    w.from,
                    w.to,
                    w.function,
                    w.file.display(),
                    w.to_line
                )
            })
            .collect();
        let first = &cycle[0];
        findings.push(Finding {
            rule: RULE.into(),
            file: first.file.clone(),
            line: first.to_line,
            message: format!(
                "lock-order cycle between {{{}}} — potential watchdog/trainer deadlock: {}",
                cycle
                    .iter()
                    .map(|w| format!("`{}`", w.from))
                    .collect::<Vec<_>>()
                    .join(", "),
                parts.join("; ")
            ),
        });
    }
}

/// Computes SCCs (iterative Tarjan) and returns one representative
/// cycle of witnesses per SCC with ≥ 2 nodes.
fn find_cycles(edges: &BTreeMap<(String, String), EdgeWitness>) -> Vec<Vec<EdgeWitness>> {
    let mut nodes: BTreeSet<&String> = BTreeSet::new();
    for (a, b) in edges.keys() {
        nodes.insert(a);
        nodes.insert(b);
    }
    let names: Vec<&String> = nodes.iter().copied().collect();
    let index_of: BTreeMap<&String, usize> =
        names.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let n = names.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, b) in edges.keys() {
        adj[index_of[a]].push(index_of[b]);
    }

    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next-child cursor).
    let mut call: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        call.push((root, 0));
        while let Some(&(v, cursor)) = call.last() {
            if cursor == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if cursor < adj[v].len() {
                if let Some(frame) = call.last_mut() {
                    frame.1 += 1;
                }
                let w = adj[v][cursor];
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if scc.len() > 1 {
                        sccs.push(scc);
                    }
                }
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }

    // For each SCC, follow in-SCC edges from its smallest node until a
    // node repeats; the repeated suffix is a concrete cycle.
    let mut out = Vec::new();
    for scc in sccs {
        let members: BTreeSet<usize> = scc.iter().copied().collect();
        let Some(&start) = scc.iter().min() else {
            continue;
        };
        let mut path = vec![start];
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        seen.insert(start);
        let mut cur = start;
        // The find() returning None is unreachable for a true SCC; ending
        // the walk there is defensive.
        while let Some(next) = adj[cur].iter().copied().find(|w| members.contains(w)) {
            if seen.contains(&next) {
                let Some(from_pos) = path.iter().position(|&p| p == next) else {
                    break;
                };
                let cycle_nodes: Vec<usize> =
                    path[from_pos..].iter().copied().chain([next]).collect();
                let mut witnesses = Vec::new();
                for pair in cycle_nodes.windows(2) {
                    let key = (names[pair[0]].clone(), names[pair[1]].clone());
                    if let Some(w) = edges.get(&key) {
                        witnesses.push(w.clone());
                    }
                }
                if !witnesses.is_empty() {
                    out.push(witnesses);
                }
                break;
            }
            seen.insert(next);
            path.push(next);
            cur = next;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(crate_dir: &str, module: &str, text: &str) -> SourceFile {
        SourceFile::parse(
            PathBuf::from(format!("crates/{crate_dir}/src/{module}.rs")),
            crate_dir.into(),
            module.into(),
            text,
        )
    }

    #[test]
    fn interprocedural_edge_closes_a_cycle() {
        // a() holds `x` across a call to b() (another module) which locks
        // `y`; c() locks `y` then `x` directly. Neither function alone
        // has both locks — only the propagated edge exposes the cycle.
        let f1 = file(
            "core",
            "a",
            "impl A {\n    fn outer(&self) {\n        let g = self.x.lock();\n        helper_b(g);\n    }\n}\n",
        );
        let f2 = file(
            "core",
            "b",
            "fn helper_b(g: G) {\n    let h = self2.y.lock();\n}\n",
        );
        let f3 = file(
            "core",
            "c",
            "fn other() {\n    let h = self3.y.lock();\n    let g = self3.x.lock();\n}\n",
        );
        let mut findings = Vec::new();
        check(&[f1, f2, f3], &mut findings);
        assert!(
            findings.iter().any(|f| f.rule == RULE),
            "expected interprocedural cycle, got: {findings:?}"
        );
        assert!(
            findings.iter().any(|f| f.rule == ACROSS_CALL),
            "expected guard_across_call, got: {findings:?}"
        );
    }

    #[test]
    fn same_module_helper_call_not_flagged() {
        let f1 = file(
            "core",
            "a",
            "impl A {\n    fn outer(&self) {\n        let g = self.x.lock();\n        self.helper(g);\n    }\n    fn helper(&self, g: G) {\n        let h = self.y.lock();\n    }\n}\n",
        );
        let mut findings = Vec::new();
        check(std::slice::from_ref(&f1), &mut findings);
        assert!(
            findings.iter().all(|f| f.rule != ACROSS_CALL),
            "same-module helpers are the normal split pattern: {findings:?}"
        );
    }

    #[test]
    fn sites_index_covers_acquisitions() {
        let f1 = file(
            "core",
            "a",
            "fn f(&self) {\n    let g = self.x.lock();\n}\n",
        );
        let graph = build_graph(std::slice::from_ref(&f1), None);
        let site = graph
            .sites
            .get(&(PathBuf::from("crates/core/src/a.rs"), 2))
            .expect("site indexed");
        assert_eq!(site.node, "core::x");
        assert!(site.lib);
    }
}

//! `lock_order` — cross-function lock-acquisition cycles.
//!
//! The watchdog (§3.1) fires while trainer threads are parked at the
//! all-reduce barrier holding their own locks; the checkpoint writer then
//! walks shared state from a different thread. If function A acquires
//! lock `x` then `y` while function B acquires `y` then `x`, the
//! watchdog-vs-trainer interleaving can deadlock — silently, at failure
//! time, which is the one moment the system must make progress.
//!
//! The rule extracts per-function acquisition sequences of
//! `.lock()`/`.read()`/`.write()` on named fields, merges them into a
//! workspace-wide acquisition graph keyed `crate::field`, and reports
//! every strongly-connected component with ≥ 2 locks, with one witness
//! edge per graph edge. Conservative by construction: a guard dropped
//! before the next acquisition still orders the pair — split the
//! function if the order is intentional, or suppress the specific
//! acquisition with `// jitlint::allow(lock_order): <reason>`.

use crate::report::Finding;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Rule name used in findings and allow directives.
pub const RULE: &str = "lock_order";

/// A witness that `from` was acquired before `to` in some function.
#[derive(Debug, Clone)]
pub struct EdgeWitness {
    /// Acquired-first node (`crate::field`).
    pub from: String,
    /// Acquired-later node (`crate::field`).
    pub to: String,
    /// File containing the witness function.
    pub file: std::path::PathBuf,
    /// Function containing both acquisitions.
    pub function: String,
    /// Line of the earlier acquisition.
    pub from_line: usize,
    /// Line of the later acquisition.
    pub to_line: usize,
}

/// Builds the acquisition graph over all files and reports cycles.
pub fn check(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let mut edges: BTreeMap<(String, String), EdgeWitness> = BTreeMap::new();

    for file in files {
        for span in &file.functions {
            let seq = function_acquisitions(file, span.body_start, span.body_end);
            for i in 0..seq.len() {
                for j in (i + 1)..seq.len() {
                    if seq[i].0 == seq[j].0 {
                        continue;
                    }
                    let key = (seq[i].0.clone(), seq[j].0.clone());
                    edges.entry(key).or_insert_with(|| EdgeWitness {
                        from: seq[i].0.clone(),
                        to: seq[j].0.clone(),
                        file: file.rel_path.clone(),
                        function: match &span.impl_type {
                            Some(t) => format!("{t}::{}", span.name),
                            None => span.name.clone(),
                        },
                        from_line: seq[i].1,
                        to_line: seq[j].1,
                    });
                }
            }
        }
    }

    for cycle in find_cycles(&edges) {
        let parts: Vec<String> = cycle
            .iter()
            .map(|w| {
                format!(
                    "`{}` then `{}` in {} ({}:{})",
                    w.from,
                    w.to,
                    w.function,
                    w.file.display(),
                    w.to_line
                )
            })
            .collect();
        let first = &cycle[0];
        findings.push(Finding {
            rule: RULE.into(),
            file: first.file.clone(),
            line: first.to_line,
            message: format!(
                "lock-order cycle between {{{}}} — potential watchdog/trainer deadlock: {}",
                cycle
                    .iter()
                    .map(|w| format!("`{}`", w.from))
                    .collect::<Vec<_>>()
                    .join(", "),
                parts.join("; ")
            ),
        });
    }
}

/// Collects `(node, line)` acquisitions in order for one function body.
/// Handles rustfmt-split chains (`self.mail\n    .lock()`) by scanning
/// the joined body text.
fn function_acquisitions(
    file: &SourceFile,
    body_start: usize,
    body_end: usize,
) -> Vec<(String, usize)> {
    // Join masked body lines, remembering each line's start offset.
    let mut text = String::new();
    let mut line_starts: Vec<(usize, usize)> = Vec::new(); // (offset, line_no)
    for line in body_start..=body_end {
        line_starts.push((text.len(), line));
        text.push_str(&file.masked[line - 1]);
        text.push('\n');
    }
    let line_of = |offset: usize| -> usize {
        match line_starts.binary_search_by(|(o, _)| o.cmp(&offset)) {
            Ok(i) => line_starts[i].1,
            Err(0) => body_start,
            Err(i) => line_starts[i - 1].1,
        }
    };

    let mut hits: Vec<(usize, String)> = Vec::new();
    for pat in [".lock()", ".read()", ".write()"] {
        let mut search = 0;
        while let Some(rel) = text[search..].find(pat) {
            let at = search + rel;
            if let Some(field) = receiver_field(&text[..at]) {
                hits.push((at, field));
            }
            search = at + pat.len();
        }
    }
    hits.sort();

    let mut out = Vec::new();
    for (at, field) in hits {
        let line = line_of(at);
        if file.is_test_line(line) || file.allowed(RULE, line).is_some() {
            continue;
        }
        out.push((format!("{}::{field}", file.crate_dir), line));
    }
    out
}

/// The last identifier of the receiver chain ending at `prefix`'s end
/// (whitespace-tolerant for rustfmt-split chains):
/// `self.inner.outstanding` → `outstanding`; `events` → `events`.
/// Returns `None` when the receiver is not a nameable field (a call
/// result, a bare `self`, or a numeric token).
fn receiver_field(prefix: &str) -> Option<String> {
    let chars: Vec<char> = prefix.chars().collect();
    let mut end = chars.len();
    while end > 0 && chars[end - 1].is_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && (chars[start - 1].is_alphanumeric() || chars[start - 1] == '_') {
        start -= 1;
    }
    if start == end {
        return None; // e.g. `)` — lock on a call result.
    }
    let ident: String = chars[start..end].iter().collect();
    if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) || ident == "self" {
        return None;
    }
    Some(ident)
}

/// Computes SCCs (iterative Tarjan) and returns one representative
/// cycle of witnesses per SCC with ≥ 2 nodes.
fn find_cycles(edges: &BTreeMap<(String, String), EdgeWitness>) -> Vec<Vec<EdgeWitness>> {
    let mut nodes: BTreeSet<&String> = BTreeSet::new();
    for (a, b) in edges.keys() {
        nodes.insert(a);
        nodes.insert(b);
    }
    let names: Vec<&String> = nodes.iter().copied().collect();
    let index_of: BTreeMap<&String, usize> =
        names.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let n = names.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, b) in edges.keys() {
        adj[index_of[a]].push(index_of[b]);
    }

    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next-child cursor).
    let mut call: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        call.push((root, 0));
        while let Some(&(v, cursor)) = call.last() {
            if cursor == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if cursor < adj[v].len() {
                if let Some(frame) = call.last_mut() {
                    frame.1 += 1;
                }
                let w = adj[v][cursor];
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if scc.len() > 1 {
                        sccs.push(scc);
                    }
                }
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }

    // For each SCC, follow in-SCC edges from its smallest node until a
    // node repeats; the repeated suffix is a concrete cycle.
    let mut out = Vec::new();
    for scc in sccs {
        let members: BTreeSet<usize> = scc.iter().copied().collect();
        let Some(&start) = scc.iter().min() else {
            continue;
        };
        let mut path = vec![start];
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        seen.insert(start);
        let mut cur = start;
        // The find() returning None is unreachable for a true SCC; ending
        // the walk there is defensive.
        while let Some(next) = adj[cur].iter().copied().find(|w| members.contains(w)) {
            if seen.contains(&next) {
                let Some(from_pos) = path.iter().position(|&p| p == next) else {
                    break;
                };
                let cycle_nodes: Vec<usize> =
                    path[from_pos..].iter().copied().chain([next]).collect();
                let mut witnesses = Vec::new();
                for pair in cycle_nodes.windows(2) {
                    let key = (names[pair[0]].clone(), names[pair[1]].clone());
                    if let Some(w) = edges.get(&key) {
                        witnesses.push(w.clone());
                    }
                }
                if !witnesses.is_empty() {
                    out.push(witnesses);
                }
                break;
            }
            seen.insert(next);
            path.push(next);
            cur = next;
        }
    }
    out
}

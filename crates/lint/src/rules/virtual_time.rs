//! `virtual_time` — wall-clock sleeps are banned outside the sim clock.
//!
//! The simulator (`simcore::time`) owns time: every latency in the
//! reproduction is virtual, so results are deterministic and a 7000-GPU
//! day simulates in milliseconds. A `std::thread::sleep` in library code
//! (a) couples test wall-clock to arbitrary back-off constants, and
//! (b) on the watchdog/collective paths it delays hang *detection*, the
//! quantity §3.1 budgets end-to-end. Blocking waits must use condvars
//! (woken by the state change they wait for) or the sim clock.
//!
//! Scope: all library code except the sim-clock allowlist and
//! `#[cfg(test)]` modules (tests may pace real threads).

use crate::report::Finding;
use crate::source::{contains_word, find_word, FileKind, SourceFile};

/// Rule name used in findings and allow directives.
pub const RULE: &str = "virtual_time";

/// `(crate_dir, module)` pairs allowed to sleep: the sim clock itself.
pub const SLEEP_ALLOWLIST: &[(&str, &str)] = &[("simcore", "time")];

/// Scans one file. Library code only: integration tests and examples may
/// pace real threads, like `#[cfg(test)]` modules always could.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib {
        return;
    }
    if SLEEP_ALLOWLIST
        .iter()
        .any(|(c, m)| *c == file.crate_dir && *m == file.module)
    {
        return;
    }
    // `use std::thread::sleep` makes bare `sleep(` calls wall-clock too.
    let imports_sleep = file
        .masked
        .iter()
        .any(|l| l.contains("use std::thread::sleep") || l.contains("use core::thread::sleep"));

    for (idx, masked) in file.masked.iter().enumerate() {
        let line = idx + 1;
        if file.is_test_line(line) {
            continue;
        }
        let qualified = masked.contains("thread::sleep");
        let bare = imports_sleep
            && find_word(masked, "sleep", 0)
                .is_some_and(|at| masked[at..].starts_with("sleep(") && !masked.contains("use "));
        let import_line = contains_word(masked, "use") && masked.contains("thread::sleep");
        if (qualified && !import_line) || bare {
            if file.allowed(RULE, line).is_some() {
                continue;
            }
            findings.push(Finding {
                rule: RULE.into(),
                file: file.rel_path.clone(),
                line,
                message: format!(
                    "wall-clock sleep in `{}::{}` — time belongs to the sim clock \
                     (`simcore::time`); wait on a condvar or justify with \
                     `// jitlint::allow({RULE}): <reason>`",
                    file.crate_dir, file.module
                ),
            });
        }
    }
}

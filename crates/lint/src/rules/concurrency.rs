//! Condvar discipline rules: `condvar_wait_loop`, `notify_under_lock`,
//! and `blocking_under_lock`.
//!
//! These target the bug class PR 5 fixed in `Communicator::abort()`: a
//! `notify_all` issued *after* the state lock was released can race a
//! waiter that has checked its predicate but not yet parked — the wake
//! is lost, and the recovery path (the one moment the system must make
//! progress, §3.1) hangs. The discipline that makes condvars sound:
//!
//! * every wait sits in a predicate loop (spurious wakeups, multi-waiter
//!   races) — `condvar_wait_loop`;
//! * every notify happens while a mutex guard is held, so the
//!   predicate-check/park window is closed to the notifier —
//!   `notify_under_lock`;
//! * nothing *else* blocks while a mutex guard is held (a parked waiter
//!   releases its own lock; a `join`/`recv` does not) —
//!   `blocking_under_lock`.
//!
//! Unlike the panic rules, these apply to test and example code too: a
//! lost wakeup hangs a test run just as hard as it hangs production
//! recovery.

use super::body::{condvar_names, Body};
use crate::report::Finding;
use crate::source::SourceFile;

/// `condvar_wait_loop` rule name.
pub const WAIT_LOOP: &str = "condvar_wait_loop";
/// `notify_under_lock` rule name.
pub const NOTIFY: &str = "notify_under_lock";
/// `blocking_under_lock` rule name.
pub const BLOCKING: &str = "blocking_under_lock";

/// Blocking call patterns beyond condvar waits. `.join()` parks on
/// another thread; `.recv()`/`.recv_timeout(` park on a channel. None of
/// them release a held mutex the way `Condvar::wait` does.
const BLOCKING_PATTERNS: &[(&str, &str)] = &[
    (".join()", "thread join"),
    (".recv()", "channel recv"),
    (".recv_timeout(", "channel recv"),
];

/// Runs all three condvar rules over every function of `files`.
pub fn check(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let condvars = condvar_names(files);
    for file in files {
        for span in &file.functions {
            let body = Body::build(file, span, &condvars);
            check_wait_loop(file, &body, findings);
            check_notify(file, &body, findings);
            check_blocking(file, &body, findings);
        }
    }
}

/// Every `wait`/`wait_for`/`wait_timeout` must have a `while`/`loop`/
/// `for` ancestor so the predicate is re-checked after wakeup.
/// `wait_while` carries its own predicate loop and is exempt.
fn check_wait_loop(file: &SourceFile, body: &Body, findings: &mut Vec<Finding>) {
    for wait in &body.waits {
        if wait.method == "wait_while" {
            continue;
        }
        if body.in_loop(wait.offset) {
            continue;
        }
        if file.allowed(WAIT_LOOP, wait.line).is_some() {
            continue;
        }
        findings.push(Finding {
            rule: WAIT_LOOP.into(),
            file: file.rel_path.clone(),
            line: wait.line,
            message: format!(
                "`{}.{}` outside a predicate loop — spurious wakeups and \
                 multi-waiter races require re-checking the condition in a \
                 `while`/`loop` around the wait",
                wait.field, wait.method
            ),
        });
    }
}

/// Every `notify_one`/`notify_all` must run while a mutex guard is held
/// in the enclosing scope. Notifying after the guard drops races a
/// waiter between predicate check and park (the PR-5 `abort()` bug).
fn check_notify(file: &SourceFile, body: &Body, findings: &mut Vec<Finding>) {
    for notify in &body.notifies {
        let held = body.live_guards_at(notify.offset).iter().any(|g| g.mutex);
        if held {
            continue;
        }
        if file.allowed(NOTIFY, notify.line).is_some() {
            continue;
        }
        findings.push(Finding {
            rule: NOTIFY.into(),
            file: file.rel_path.clone(),
            line: notify.line,
            message: format!(
                "`{}.{}` without a mutex guard held — a waiter that checked \
                 its predicate but has not parked yet misses this wake \
                 (lost-wakeup race; hold the predicate's lock across the \
                 notify)",
                notify.field, notify.method
            ),
        });
    }
}

/// No blocking call while holding a mutex guard other than the one the
/// wait itself releases: condvar waits check their guard argument,
/// `join`/`recv` never release anything.
fn check_blocking(file: &SourceFile, body: &Body, findings: &mut Vec<Finding>) {
    // Condvar waits: any live mutex guard that is not the wait's own
    // argument stays held for the whole park.
    for wait in &body.waits {
        let offenders: Vec<usize> = body
            .live_guards_at(wait.offset)
            .iter()
            .filter(|g| g.mutex && g.line > 0)
            .filter(|g| match (&g.name, &wait.arg_ident) {
                (Some(n), Some(a)) => n != a,
                // A nameless temporary can't be the wait's argument.
                (None, _) => true,
                // Unnamed wait arg: be conservative only when more than
                // one guard is live (the single guard is the argument).
                (Some(_), None) => false,
            })
            .map(|g| g.line)
            .collect();
        if offenders.is_empty() {
            continue;
        }
        if file.allowed(BLOCKING, wait.line).is_some() {
            continue;
        }
        findings.push(Finding {
            rule: BLOCKING.into(),
            file: file.rel_path.clone(),
            line: wait.line,
            message: format!(
                "`{}.{}` parks while a second mutex guard (acquired line {}) \
                 stays held — the wait only releases its own lock, so every \
                 other thread needing that second lock hangs for the whole park",
                wait.field,
                wait.method,
                offenders
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        });
    }

    // Non-releasing blocking calls: flag if any mutex guard is live.
    for (pat, what) in BLOCKING_PATTERNS {
        let mut search = 0;
        while let Some(rel) = body.text[search..].find(pat) {
            let at = search + rel;
            search = at + pat.len();
            let offenders: Vec<usize> = body
                .live_guards_at(at)
                .iter()
                .filter(|g| g.mutex && g.line > 0)
                .map(|g| g.line)
                .collect();
            if offenders.is_empty() {
                continue;
            }
            let line = body.line_of(at);
            if file.allowed(BLOCKING, line).is_some() {
                continue;
            }
            findings.push(Finding {
                rule: BLOCKING.into(),
                file: file.rel_path.clone(),
                line,
                message: format!(
                    "{what} while a mutex guard (acquired line {}) is held — \
                     blocking calls under a lock serialize every contender \
                     and can deadlock against the blocked thread",
                    offenders
                        .iter()
                        .map(|l| l.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn findings_for(text: &str) -> Vec<Finding> {
        let file = SourceFile::parse(PathBuf::from("x.rs"), "c".into(), "m".into(), text);
        let mut findings = Vec::new();
        check(std::slice::from_ref(&file), &mut findings);
        findings
    }

    #[test]
    fn bare_wait_flagged_looped_wait_clean() {
        let text = "\
struct S { cv: Condvar }
impl S {
    fn bad(&self) {
        let mut st = self.state.lock();
        if st.n == 0 {
            self.cv.wait(&mut st);
        }
    }
    fn good(&self) {
        let mut st = self.state.lock();
        while st.n == 0 {
            self.cv.wait(&mut st);
        }
    }
}
";
        let f = findings_for(text);
        let waits: Vec<_> = f.iter().filter(|x| x.rule == WAIT_LOOP).collect();
        assert_eq!(waits.len(), 1);
        assert_eq!(waits[0].line, 6);
    }

    #[test]
    fn notify_after_guard_drop_flagged() {
        // The PR-5 abort() shape: guard in a narrow scope, notify outside.
        let text = "\
struct S { cv: Condvar }
impl S {
    fn abort(&self) {
        {
            let mut st = self.state.lock();
            st.aborted = true;
        }
        self.cv.notify_all();
    }
    fn fixed(&self) {
        let mut st = self.state.lock();
        st.aborted = true;
        self.cv.notify_all();
    }
}
";
        let f = findings_for(text);
        let notifies: Vec<_> = f.iter().filter(|x| x.rule == NOTIFY).collect();
        assert_eq!(notifies.len(), 1);
        assert_eq!(notifies[0].line, 8);
    }

    #[test]
    fn second_guard_across_wait_flagged() {
        let text = "\
struct S { cv: Condvar }
impl S {
    fn bad(&self) {
        let _peers = self.peers.lock();
        let mut st = self.state.lock();
        while st.n == 0 {
            self.cv.wait(&mut st);
        }
    }
}
";
        let f = findings_for(text);
        let blocking: Vec<_> = f.iter().filter(|x| x.rule == BLOCKING).collect();
        assert_eq!(blocking.len(), 1);
        assert_eq!(blocking[0].line, 7);
    }

    #[test]
    fn join_under_lock_flagged() {
        let text = "\
fn bad(&self) {
    let st = self.state.lock();
    self.handle.join();
    drop(st);
}
fn good(&self) {
    let st = self.state.lock();
    drop(st);
    self.handle.join();
}
";
        let f = findings_for(text);
        let blocking: Vec<_> = f.iter().filter(|x| x.rule == BLOCKING).collect();
        assert_eq!(blocking.len(), 1);
        assert_eq!(blocking[0].line, 3);
    }

    #[test]
    fn allow_suppresses_each_rule() {
        let text = "\
struct S { cv: Condvar }
impl S {
    fn f(&self) {
        // jitlint::allow(notify_under_lock): wake-all on shutdown, waiters re-check aborted flag under their own lock
        self.cv.notify_all();
    }
}
";
        let f = findings_for(text);
        assert!(f.is_empty(), "suppressed: {f:?}");
    }
}

//! Per-function body model shared by the concurrency rules.
//!
//! The model joins a function's masked lines into one text buffer and
//! extracts, by offset:
//!
//! * **blocks** — every `{…}` region with a looping/non-looping
//!   classification (`while` / `loop` / `for` headers are loops);
//! * **guards** — live ranges of `MutexGuard`-like values: `let`-bound
//!   guards live to the end of their enclosing block (or an explicit
//!   `drop`), temporary guards (`self.x.lock().op()`) live to the end of
//!   their statement — which, for `if let` / `while let` / `for` / `match`
//!   headers, is the end of the governed block, exactly the Rust 2021
//!   temporary-lifetime rule that made the watchdog hold its action lock
//!   across the abort callback;
//! * **condvar calls** — `wait*` / `notify_*` sites whose receiver is a
//!   known condvar field, with the wait's guard argument;
//! * **calls** — named call sites for interprocedural lock-set
//!   propagation.

use crate::source::{find_word, FnSpan, SourceFile};
use std::collections::BTreeSet;

/// A `{…}` region inside the body, by byte offset into [`Body::text`].
#[derive(Debug, Clone)]
pub struct Block {
    /// Offset of the opening brace.
    pub start: usize,
    /// Offset of the closing brace.
    pub end: usize,
    /// Whether the block header is a loop (`while` / `loop` / `for`).
    pub looping: bool,
}

/// A lock acquisition site (`.lock()` / `.read()` / `.write()`).
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Offset of the acquisition pattern.
    pub offset: usize,
    /// 1-indexed source line.
    pub line: usize,
    /// Receiver field, when the receiver is a nameable field.
    pub field: Option<String>,
}

/// A live range of a held guard.
#[derive(Debug, Clone)]
pub struct Guard {
    /// Binding name (`st`), if `let`-bound or a function parameter.
    pub name: Option<String>,
    /// Lock field the guard came from, when resolvable. Parameter guards
    /// have no field (their lock is the caller's business).
    pub field: Option<String>,
    /// Offset the guard becomes live (acquisition or body start).
    pub start: usize,
    /// Offset the guard dies (block end, statement end, or `drop`).
    pub end: usize,
    /// Line of the acquisition (0 for parameter guards).
    pub line: usize,
    /// Whether this is a `Mutex` guard (`.lock()` / `MutexGuard` param)
    /// rather than an `RwLock` read/write guard.
    pub mutex: bool,
}

/// A condvar `wait*` or `notify_*` call.
#[derive(Debug, Clone)]
pub struct CvCall {
    /// Offset of the method name.
    pub offset: usize,
    /// 1-indexed source line.
    pub line: usize,
    /// Condvar field name (receiver).
    pub field: String,
    /// Method (`wait`, `wait_for`, `wait_while`, `notify_one`, …).
    pub method: String,
    /// For waits: the guard identifier passed as first argument.
    pub arg_ident: Option<String>,
}

/// A named call site (`foo(…)`, `x.foo(…)`, `T::foo(…)`).
#[derive(Debug, Clone)]
pub struct Call {
    /// Offset of the callee identifier.
    pub offset: usize,
    /// 1-indexed source line.
    pub line: usize,
    /// Callee name.
    pub name: String,
    /// Method-call receiver identifier (`g` in `g.health()`), when it is
    /// a plain name. Used to recognize calls *on a guard itself* — a
    /// method on already-locked data, not a call made while holding an
    /// unrelated lock.
    pub receiver: Option<String>,
    /// Path qualifier (`Job` in `Job::new(…)`), when the call is
    /// `Type::method(…)`. Lets the resolver restrict candidates to
    /// `impl Type` instead of unioning every same-named function.
    pub qualifier: Option<String>,
    /// True when the call chains directly on a lock acquisition
    /// (`self.gpu.lock().restore(…)`): the callee is a method of the
    /// locked data, whose type the text scanner cannot know, so
    /// name resolution would union unrelated same-named functions.
    pub chained_on_lock: bool,
}

/// The analyzed body of one function.
pub struct Body {
    /// Joined masked lines (with trailing newlines), body_start..=body_end.
    pub text: String,
    line_starts: Vec<(usize, usize)>,
    /// All `{…}` blocks, outermost first by start offset.
    pub blocks: Vec<Block>,
    /// Lock acquisition sites in offset order.
    pub acquisitions: Vec<Acquisition>,
    /// Guard live ranges (including `MutexGuard` parameters).
    pub guards: Vec<Guard>,
    /// Condvar waits.
    pub waits: Vec<CvCall>,
    /// Condvar notifies.
    pub notifies: Vec<CvCall>,
    /// Named call sites in offset order.
    pub calls: Vec<Call>,
}

const ACQ_PATTERNS: &[&str] = &[".lock()", ".read()", ".write()"];
const WAIT_METHODS: &[&str] = &["wait", "wait_for", "wait_timeout", "wait_while"];
const NOTIFY_METHODS: &[&str] = &["notify_one", "notify_all"];
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "move", "in", "as",
    "Some", "Ok", "Err", "None", "Box", "Vec", "vec",
];

impl Body {
    /// Builds the model for `span` of `file`, resolving condvar receivers
    /// against the workspace-wide `condvars` field-name set.
    pub fn build(file: &SourceFile, span: &FnSpan, condvars: &BTreeSet<String>) -> Body {
        let mut text = String::new();
        let mut line_starts: Vec<(usize, usize)> = Vec::new();
        for line in span.body_start..=span.body_end {
            line_starts.push((text.len(), line));
            text.push_str(&file.masked[line - 1]);
            text.push('\n');
        }
        let blocks = find_blocks(&text);
        let mut body = Body {
            text,
            line_starts,
            blocks,
            acquisitions: Vec::new(),
            guards: Vec::new(),
            waits: Vec::new(),
            notifies: Vec::new(),
            calls: Vec::new(),
        };
        body.find_acquisitions_and_guards();
        body.find_param_guards(file, span);
        body.find_cv_calls(condvars);
        body.find_calls();
        body
    }

    /// Maps a byte offset in `text` to its 1-indexed source line.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search_by(|(o, _)| o.cmp(&offset)) {
            Ok(i) => self.line_starts[i].1,
            Err(0) => self.line_starts.first().map(|(_, l)| *l).unwrap_or(1),
            Err(i) => self.line_starts[i - 1].1,
        }
    }

    /// Guards live at `offset`.
    pub fn live_guards_at(&self, offset: usize) -> Vec<&Guard> {
        self.guards
            .iter()
            .filter(|g| g.start <= offset && offset < g.end)
            .collect()
    }

    /// Whether `offset` has a loop (`while`/`loop`/`for`) ancestor block.
    pub fn in_loop(&self, offset: usize) -> bool {
        self.blocks
            .iter()
            .any(|b| b.looping && b.start < offset && offset < b.end)
    }

    /// The innermost block containing `offset` (the body's outer block at
    /// minimum), as `(start, end)`.
    fn enclosing_block(&self, offset: usize) -> (usize, usize) {
        self.blocks
            .iter()
            .filter(|b| b.start < offset && offset < b.end)
            .map(|b| (b.start, b.end))
            .min_by_key(|(s, e)| e - s)
            .unwrap_or((0, self.text.len()))
    }

    fn find_acquisitions_and_guards(&mut self) {
        let mut sites: Vec<(usize, usize)> = Vec::new(); // (offset, pat_len)
        for pat in ACQ_PATTERNS {
            let mut search = 0;
            while let Some(rel) = self.text[search..].find(pat) {
                let at = search + rel;
                sites.push((at, pat.len()));
                search = at + pat.len();
            }
        }
        sites.sort();
        for (at, pat_len) in sites {
            let mutex = self.text[at..].starts_with(".lock()");
            let field = receiver_field(&self.text[..at]);
            let line = self.line_of(at);
            self.acquisitions.push(Acquisition {
                offset: at,
                line,
                field: field.clone(),
            });
            let after = at + pat_len;
            let (_, block_end) = self.enclosing_block(at);
            // The `let` binds the guard only when the acquisition is the
            // whole initializer (`let st = x.lock();`) — in
            // `let v = x.lock().pop();` or `let g = (f.lock())(…)` the
            // guard is a temporary and the binding holds something else.
            let binds_guard = self.text[after..].trim_start().starts_with(';');
            if let Some(name) = let_binding_before(&self.text, at).filter(|_| binds_guard) {
                // `let g = x.lock();` — live to block end or explicit drop.
                let end = drop_site(&self.text, &name, after, block_end).unwrap_or(block_end);
                self.guards.push(Guard {
                    name: Some(name),
                    field,
                    start: after,
                    end,
                    line,
                    mutex,
                });
            } else {
                // Temporary guard — live to the end of the statement; a
                // `for`/`if let`/`while let`/`match` header extends that
                // to the end of the governed block (Rust temporaries).
                let end = statement_end(&self.text, after, block_end);
                self.guards.push(Guard {
                    name: None,
                    field,
                    start: after,
                    end,
                    line,
                    mutex,
                });
            }
        }
    }

    /// Guard parameters (`st: &mut MutexGuard<…>`) are live for the whole
    /// body; the lock they hold belongs to the caller.
    fn find_param_guards(&mut self, file: &SourceFile, span: &FnSpan) {
        for line in span.sig_start..=span.body_start {
            let Some(masked) = file.masked.get(line - 1) else {
                continue;
            };
            let mutex = masked.contains("MutexGuard");
            if !mutex && !masked.contains("RwLockReadGuard") && !masked.contains("RwLockWriteGuard")
            {
                continue;
            }
            let Some(colon) = masked.find(':') else {
                continue;
            };
            let name: String = masked[..colon]
                .trim()
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            if name.is_empty() || name == "mut" {
                continue;
            }
            self.guards.push(Guard {
                name: Some(name),
                field: None,
                start: 0,
                end: self.text.len(),
                line: 0,
                mutex,
            });
        }
    }

    fn find_cv_calls(&mut self, condvars: &BTreeSet<String>) {
        for (methods, is_wait) in [(WAIT_METHODS, true), (NOTIFY_METHODS, false)] {
            for method in methods {
                let pat = format!(".{method}(");
                let mut search = 0;
                while let Some(rel) = self.text[search..].find(&pat) {
                    let at = search + rel;
                    search = at + pat.len();
                    let Some(field) = receiver_field(&self.text[..at]) else {
                        continue;
                    };
                    if !condvars.contains(&field) {
                        continue;
                    }
                    let call = CvCall {
                        offset: at,
                        line: self.line_of(at),
                        field,
                        method: method.to_string(),
                        arg_ident: if is_wait {
                            first_arg_ident(&self.text[at + pat.len()..])
                        } else {
                            None
                        },
                    };
                    if is_wait {
                        self.waits.push(call);
                    } else {
                        self.notifies.push(call);
                    }
                }
            }
        }
        self.waits.sort_by_key(|c| c.offset);
        self.notifies.sort_by_key(|c| c.offset);
    }

    fn find_calls(&mut self) {
        let bytes: Vec<char> = self.text.chars().collect();
        let mut i = 0usize;
        while i < bytes.len() {
            if !(bytes[i].is_alphabetic() || bytes[i] == '_') {
                i += 1;
                continue;
            }
            let start = i;
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            // Word boundary before.
            if start > 0 && (bytes[start - 1].is_alphanumeric() || bytes[start - 1] == '_') {
                continue;
            }
            if i >= bytes.len() || bytes[i] != '(' {
                continue;
            }
            let name: String = bytes[start..i].iter().collect();
            if KEYWORDS.contains(&name.as_str()) {
                continue;
            }
            // Skip definitions (`fn name(`).
            let before = self.text[..start].trim_end();
            if before.ends_with("fn") {
                continue;
            }
            let receiver = before.strip_suffix('.').and_then(receiver_field);
            let qualifier = before
                .strip_suffix("::")
                .and_then(trailing_ident)
                .filter(|q| q.chars().next().is_some_and(|c| c.is_uppercase()));
            let chained_on_lock = before
                .strip_suffix('.')
                .is_some_and(|pre| ACQ_PATTERNS.iter().any(|p| pre.ends_with(p)));
            self.calls.push(Call {
                offset: start,
                line: self.line_of(start),
                name,
                receiver,
                qualifier,
                chained_on_lock,
            });
        }
    }
}

/// All `{…}` blocks in `text` with loop classification: a block is a loop
/// when the header segment since the previous `;`/`{`/`}` contains a
/// `while`, `loop`, or `for` keyword.
fn find_blocks(text: &str) -> Vec<Block> {
    let mut out = Vec::new();
    let mut stack: Vec<(usize, bool)> = Vec::new();
    let mut seg_start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '{' => {
                let header = &text[seg_start..i];
                let looping = contains_loop_keyword(header);
                stack.push((i, looping));
                seg_start = i + 1;
            }
            '}' => {
                if let Some((start, looping)) = stack.pop() {
                    out.push(Block {
                        start,
                        end: i,
                        looping,
                    });
                }
                seg_start = i + 1;
            }
            ';' => seg_start = i + 1,
            _ => {}
        }
    }
    // Unclosed blocks (the body's own outer brace) close at text end.
    while let Some((start, looping)) = stack.pop() {
        out.push(Block {
            start,
            end: text.len(),
            looping,
        });
    }
    out.sort_by_key(|b| b.start);
    out
}

fn contains_loop_keyword(header: &str) -> bool {
    ["while", "loop", "for"]
        .iter()
        .any(|kw| find_word(header, kw, 0).is_some())
}

/// If the statement containing the receiver ending before `acq_offset`
/// is a `let` binding, returns the bound identifier.
fn let_binding_before(text: &str, acq_offset: usize) -> Option<String> {
    let stmt_start = text[..acq_offset]
        .rfind([';', '{', '}'])
        .map(|p| p + 1)
        .unwrap_or(0);
    let stmt = text[stmt_start..acq_offset].trim_start();
    let rest = stmt.strip_prefix("let")?;
    let rest = rest.strip_prefix(|c: char| c.is_whitespace())?.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    // Require `=` between the binding and the acquisition (excludes
    // `let x = if …` arms rebinding something else — close enough).
    rest[name.len()..]
        .trim_start()
        .starts_with(['=', ':'])
        .then_some(name)
}

/// First `drop(name)` / `mem::drop(name)` for `name` in `from..limit`.
fn drop_site(text: &str, name: &str, from: usize, limit: usize) -> Option<usize> {
    let hay = &text[from..limit.min(text.len())];
    let mut search = 0usize;
    while let Some(at) = find_word(hay, "drop", search) {
        search = at + 4;
        let after = hay[at + 4..].trim_start();
        let Some(args) = after.strip_prefix('(') else {
            continue;
        };
        let inner: String = args
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if inner == name {
            return Some(from + at);
        }
    }
    None
}

/// End offset of the statement starting after `from`: the next `;` at
/// the same brace/paren depth, or — when a `{` opens first at that depth
/// (a `for` / `if let` / `while let` / `match` header) — the end of that
/// governed block, matching Rust's temporary-lifetime extension.
fn statement_end(text: &str, from: usize, limit: usize) -> usize {
    let mut paren = 0i64;
    let mut brace = 0i64;
    let bytes = text.as_bytes();
    let mut i = from;
    while i < limit.min(text.len()) {
        match bytes[i] {
            b'(' | b'[' => paren += 1,
            b')' | b']' => paren -= 1,
            b'{' => brace += 1,
            b'}' => {
                brace -= 1;
                if brace < 0 {
                    return i;
                }
                if brace == 0 && i + 1 < text.len() {
                    // A governed block just closed; the temporary dies here.
                    return i + 1;
                }
            }
            b';' if paren <= 0 && brace == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    limit.min(text.len())
}

/// The receiver field ending at `prefix`'s end (whitespace-tolerant for
/// rustfmt-split chains): `self.inner.outstanding` → `outstanding`.
/// `None` when the receiver is not a nameable field.
pub fn receiver_field(prefix: &str) -> Option<String> {
    let chars: Vec<char> = prefix.chars().collect();
    let mut end = chars.len();
    while end > 0 && chars[end - 1].is_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && (chars[start - 1].is_alphanumeric() || chars[start - 1] == '_') {
        start -= 1;
    }
    if start == end {
        return None; // e.g. `)` — lock on a call result.
    }
    let ident: String = chars[start..end].iter().collect();
    if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) || ident == "self" {
        return None;
    }
    Some(ident)
}

/// First identifier of a call's argument list (`&mut st, …` → `st`).
fn first_arg_ident(after_paren: &str) -> Option<String> {
    let t = after_paren.trim_start();
    let t = t.strip_prefix('&').unwrap_or(t).trim_start();
    let t = t.strip_prefix("mut ").unwrap_or(t).trim_start();
    let name: String = t
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Workspace-wide condvar field/variable names: struct fields declared
/// `name: Condvar`, struct-literal inits `name: Condvar::new()`, and
/// `let name = Condvar::new()` bindings.
pub fn condvar_names(files: &[SourceFile]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for file in files {
        for masked in &file.masked {
            let Some(at) = masked.find("Condvar") else {
                continue;
            };
            let before = masked[..at].trim_end();
            if let Some(before) = before.strip_suffix(':') {
                // `name: Condvar` or `name: Condvar::new(),`
                if let Some(name) = trailing_ident(before) {
                    out.insert(name);
                }
            } else if let Some(eq) = before.strip_suffix('=') {
                // `let name = Condvar::new();`
                if let Some(name) = trailing_ident(eq) {
                    out.insert(name);
                }
            }
        }
    }
    out
}

fn trailing_ident(s: &str) -> Option<String> {
    let t = s.trim_end();
    let name: String = t
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn model(text: &str) -> (SourceFile, Body) {
        let file = SourceFile::parse(PathBuf::from("x.rs"), "c".into(), "m".into(), text);
        let span = file.functions[0].clone();
        let mut cvs = BTreeSet::new();
        cvs.insert("cv".to_string());
        let body = Body::build(&file, &span, &cvs);
        (file, body)
    }

    #[test]
    fn let_guard_lives_to_block_end() {
        let (_, b) = model("fn f(&self) {\n    let st = self.state.lock();\n    touch();\n}\n");
        assert_eq!(b.guards.len(), 1);
        let g = &b.guards[0];
        assert_eq!(g.name.as_deref(), Some("st"));
        assert_eq!(g.field.as_deref(), Some("state"));
        let call = b.calls.iter().find(|c| c.name == "touch").unwrap();
        assert!(!b.live_guards_at(call.offset).is_empty());
    }

    #[test]
    fn dropped_guard_dies_early() {
        let (_, b) = model(
            "fn f(&self) {\n    let st = self.state.lock();\n    drop(st);\n    touch();\n}\n",
        );
        let call = b.calls.iter().find(|c| c.name == "touch").unwrap();
        assert!(b.live_guards_at(call.offset).is_empty());
    }

    #[test]
    fn temporary_guard_scoped_to_statement() {
        let (_, b) = model("fn f(&self) {\n    self.state.lock().push(1);\n    touch();\n}\n");
        let push = b.calls.iter().find(|c| c.name == "push").unwrap();
        assert!(!b.live_guards_at(push.offset).is_empty());
        let call = b.calls.iter().find(|c| c.name == "touch").unwrap();
        assert!(b.live_guards_at(call.offset).is_empty());
    }

    #[test]
    fn for_header_temporary_spans_the_loop_body() {
        let (_, b) = model(
            "fn f(&self) {\n    for c in self.comms.lock().values() {\n        c.abort();\n    }\n    touch();\n}\n",
        );
        let abort = b.calls.iter().find(|c| c.name == "abort").unwrap();
        assert!(
            !b.live_guards_at(abort.offset).is_empty(),
            "for-header temporary is live in the loop body"
        );
        let call = b.calls.iter().find(|c| c.name == "touch").unwrap();
        assert!(b.live_guards_at(call.offset).is_empty());
    }

    #[test]
    fn loop_ancestry_detected() {
        let (_, b) = model(
            "fn f(&self) {\n    while x() {\n        if y() {\n            self.cv.wait(&mut st);\n        }\n    }\n    self.cv.wait(&mut st);\n}\n",
        );
        assert_eq!(b.waits.len(), 2);
        assert!(b.in_loop(b.waits[0].offset));
        assert!(!b.in_loop(b.waits[1].offset));
        assert_eq!(b.waits[0].arg_ident.as_deref(), Some("st"));
    }

    #[test]
    fn condvar_registry_finds_declarations() {
        let file = SourceFile::parse(
            PathBuf::from("x.rs"),
            "c".into(),
            "m".into(),
            "struct S {\n    cv: Condvar,\n}\nfn mk() {\n    let pair_cv = Condvar::new();\n    let s = S { obs_cv: Condvar::new() };\n}\n",
        );
        let names = condvar_names(std::slice::from_ref(&file));
        assert!(names.contains("cv"));
        assert!(names.contains("pair_cv"));
        assert!(names.contains("obs_cv"));
    }
}

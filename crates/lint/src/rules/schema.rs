//! `checkpoint_schema` — persisted types must declare a schema version.
//!
//! Checkpoint metadata (§3.2) and replay logs (§4.1) outlive the process
//! that wrote them: recovery deserializes state written by a *previous*
//! incarnation of the binary. Any serializable type in a persistence
//! module therefore needs an explicit, reviewable schema version so a
//! format change is a deliberate bump, not a silent corruption at
//! restore time. The rule requires every `#[derive(… Serialize …)]` type
//! in a persistence module to expose `SCHEMA_VERSION` in its inherent
//! `impl` block.

use crate::report::Finding;
use crate::source::{contains_word, FileKind, SourceFile};

/// Rule name used in findings and allow directives.
pub const RULE: &str = "checkpoint_schema";

/// Module names (in any crate) that persist state across failures.
pub const PERSISTENCE_MODULES: &[&str] = &["checkpoint", "oplog", "criu", "store"];

/// Scans one file. Library code only: test fixtures don't outlive the
/// process that wrote them.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib || !PERSISTENCE_MODULES.contains(&file.module.as_str()) {
        return;
    }
    let mut idx = 0;
    while idx < file.masked.len() {
        let line = idx + 1;
        if file.is_test_line(line) || !file.masked[idx].contains("#[derive(") {
            idx += 1;
            continue;
        }
        // Join the (possibly rustfmt-split) derive attribute to `)]`.
        let mut attr = String::new();
        let mut end_idx = idx;
        for (j, m) in file.masked.iter().enumerate().skip(idx).take(16) {
            attr.push_str(m);
            attr.push('\n');
            end_idx = j;
            if m.contains(")]") {
                break;
            }
        }
        let next_idx = end_idx + 1;
        if !contains_word(&attr, "Serialize") {
            idx = next_idx;
            continue;
        }
        let Some(name) = type_name_after(file, end_idx) else {
            idx = next_idx;
            continue;
        };
        if has_schema_version(file, &name) || file.allowed(RULE, line).is_some() {
            idx = next_idx;
            continue;
        }
        findings.push(Finding {
            rule: RULE.into(),
            file: file.rel_path.clone(),
            line,
            message: format!(
                "serializable type `{name}` in persistence module `{}::{}` has no \
                 `SCHEMA_VERSION` — add `pub const SCHEMA_VERSION: u16` to its impl \
                 block or justify with `// jitlint::allow({RULE}): <reason>`",
                file.crate_dir, file.module
            ),
        });
        idx = next_idx;
    }
}

/// Finds the `struct`/`enum` name on or after the derive line at `idx`.
fn type_name_after(file: &SourceFile, idx: usize) -> Option<String> {
    for masked in file.masked.iter().skip(idx).take(8) {
        for kw in ["struct", "enum"] {
            if let Some(at) = crate::source::find_word(masked, kw, 0) {
                let name: String = masked[at + kw.len()..]
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    return Some(name);
                }
            }
        }
    }
    None
}

/// Whether an `impl <name>` block in this file declares `SCHEMA_VERSION`.
fn has_schema_version(file: &SourceFile, name: &str) -> bool {
    let mut i = 0;
    while i < file.masked.len() {
        let line = &file.masked[i];
        let is_impl = crate::source::find_word(line, "impl", 0)
            .is_some_and(|at| line[at + 4..].trim_start().starts_with(name));
        if !is_impl {
            i += 1;
            continue;
        }
        // Scan the impl block (brace-depth bounded) for the marker.
        let mut depth: i64 = 0;
        let mut entered = false;
        for (j, scan) in file.masked.iter().enumerate().skip(i) {
            if contains_word(scan, "SCHEMA_VERSION") {
                return true;
            }
            for c in scan.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if entered && depth <= 0 {
                i = j;
                break;
            }
        }
        i += 1;
    }
    false
}

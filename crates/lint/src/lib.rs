//! `jitlint` — workspace-wide invariant analyzer for recovery-critical
//! code.
//!
//! A checkpoint system's worst bugs only fire during a failure, which is
//! exactly when tests aren't watching. `jitlint` turns the paper's
//! operational invariants (*Just-In-Time Checkpointing*, EuroSys '24)
//! into machine checks that run on every `cargo test`:
//!
//! * [`rules::panic_path`] — no reachable panics in recovery-critical
//!   modules;
//! * [`rules::lock_order`] — the workspace-wide lock acquisition graph
//!   is cycle-free;
//! * [`rules::virtual_time`] — no wall-clock sleeps outside the sim
//!   clock;
//! * [`rules::schema`] — persisted types declare a schema version.
//!
//! The analyzer is deliberately std-only (no syn/proc-macro2): it scans
//! comment/string-masked source with brace-depth tracking, which is
//! precise enough for these rules and keeps the tool usable in offline
//! build environments.
//!
//! Suppression is per-site and must carry a reason:
//!
//! ```text
//! // jitlint::allow(panic_path): mutex poisoning is unreachable, guard never panics
//! let state = self.state.lock().unwrap();
//! ```

pub mod report;
pub mod rules;
pub mod source;
pub mod witness;

use report::Finding;
use source::{FileKind, SourceFile};
use std::io;
use std::path::{Path, PathBuf};

/// Loads and parses every Rust file under `root` the analyzer covers:
/// `crates/*/{src,tests,examples}` plus the workspace-level `src/`,
/// `tests/`, and `examples/` (attributed to the pseudo-crate
/// `workspace`). Per-rule scoping happens via [`FileKind`]: library,
/// integration-test, and example files are distinguished so panic rules
/// can stand down in test code while the concurrency rules stay on
/// everywhere. Paths containing a `fixtures` component are skipped —
/// jitlint's own test fixtures contain deliberate violations.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let crates_dir = root.join("crates");
    let mut units: Vec<(PathBuf, String)> = Vec::new(); // (crate dir, crate name)
    for entry in std::fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            if let Some(name) = entry.path().file_name().and_then(|n| n.to_str()) {
                units.push((entry.path(), name.to_string()));
            }
        }
    }
    units.sort();
    units.push((root.to_path_buf(), "workspace".to_string()));

    let mut files = Vec::new();
    for (unit_dir, crate_name) in &units {
        for (sub, kind) in [
            ("src", FileKind::Lib),
            ("tests", FileKind::Test),
            ("examples", FileKind::Example),
        ] {
            let dir = unit_dir.join(sub);
            if !dir.is_dir() {
                continue;
            }
            let mut rs_files = Vec::new();
            collect_rs_files(&dir, &mut rs_files)?;
            rs_files.sort();
            for path in rs_files {
                let rel_path = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                // Relative to the analyzed root: the analyzer's own test
                // fixtures (deliberate violations) stay invisible when the
                // real workspace is scanned, but a fixture tree *used as*
                // the root is scanned normally.
                if rel_path.components().any(|c| c.as_os_str() == "fixtures") {
                    continue;
                }
                let text = std::fs::read_to_string(&path)?;
                let module = module_name(&path);
                files.push(SourceFile::parse_kind(
                    rel_path,
                    crate_name.clone(),
                    module,
                    kind,
                    &text,
                ));
            }
        }
    }
    Ok(files)
}

/// Runs every rule over the parsed files, then the `unused_allow` meta
/// check (which needs the other rules' suppression hits).
pub fn run_rules(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    rules::run_file_rules(files, &mut findings);
    rules::lock_order::check(files, &mut findings);
    rules::check_unused_allows(files, &mut findings);
    findings.sort();
    findings
}

/// Convenience: parse the workspace at `root` and run all rules.
pub fn analyze(root: &Path) -> io::Result<Vec<Finding>> {
    let files = load_workspace(root)?;
    Ok(run_rules(&files))
}

/// Inserts a `// jitlint::allow(<rule>): TODO: justify this exemption`
/// line above each finding's line, preserving indentation. Returns the
/// number of inserted directives. `allow_syntax` findings (malformed
/// directives) cannot be auto-fixed and are skipped.
pub fn apply_fix_allow(root: &Path, findings: &[Finding]) -> io::Result<usize> {
    use std::collections::BTreeMap;
    // file → descending-sorted (line, rule) so insertions don't shift
    // later targets.
    let mut by_file: BTreeMap<&PathBuf, Vec<(usize, &str)>> = BTreeMap::new();
    for f in findings {
        if f.rule == "allow_syntax" {
            continue;
        }
        by_file.entry(&f.file).or_default().push((f.line, &f.rule));
    }
    let mut inserted = 0usize;
    for (rel, mut sites) in by_file {
        sites.sort_by(|a, b| b.cmp(a));
        sites.dedup();
        let path = root.join(rel);
        let text = std::fs::read_to_string(&path)?;
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        for (line, rule) in sites {
            if line == 0 || line > lines.len() {
                continue;
            }
            let indent: String = lines[line - 1]
                .chars()
                .take_while(|c| c.is_whitespace())
                .collect();
            lines.insert(
                line - 1,
                format!("{indent}// jitlint::allow({rule}): TODO: justify this exemption"),
            );
            inserted += 1;
        }
        let mut out = lines.join("\n");
        out.push('\n');
        std::fs::write(&path, out)?;
    }
    Ok(inserted)
}

/// Module name for rule scoping: the file stem, except `mod.rs` and
/// `lib.rs`-like roots take their directory name where sensible.
fn module_name(path: &Path) -> String {
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    if stem == "mod" {
        if let Some(dir) = path
            .parent()
            .and_then(|p| p.file_name())
            .and_then(|n| n.to_str())
        {
            return dir.to_string();
        }
    }
    stem.to_string()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

//! Source model for `jitlint`: a lightweight, brace-aware view of one
//! Rust file, built without a full parser so the analyzer stays std-only
//! and works offline.
//!
//! The model provides:
//!
//! * **masked lines** — the source with comments, string/char literals,
//!   and doc text blanked out (replaced by spaces), so rule scans never
//!   false-positive on `"panic!"` inside a string or a comment;
//! * **test regions** — line ranges belonging to `#[cfg(test)]` modules;
//! * **allow directives** — `// jitlint::allow(rule_a, rule_b): reason`
//!   comments, resolved to the line of code they suppress;
//! * **function spans** — `(impl_type, fn_name, body_range)` triples used
//!   by the lock-order rule.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// What kind of compilation unit a file belongs to. Rules opt in or out
/// per kind: test and example code may panic freely, but a lost wakeup
/// hangs a test run just as hard as it hangs production recovery, so the
/// concurrency rules stay on everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` of a crate (library / binary code).
    Lib,
    /// An integration-test file (`crates/*/tests`, top-level `tests/`).
    Test,
    /// An example (`examples/`).
    Example,
}

/// One analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the analysis root (as reported in findings).
    pub rel_path: PathBuf,
    /// Crate directory name (`crates/<crate_dir>/…`).
    pub crate_dir: String,
    /// Module name derived from the file stem (`lib`, `checkpoint`, …).
    pub module: String,
    /// Which compilation unit the file belongs to.
    pub kind: FileKind,
    /// Raw source lines (1-indexed via `line - 1`).
    pub lines: Vec<String>,
    /// Lines with comments and literals blanked to spaces.
    pub masked: Vec<String>,
    /// `in_test[i]` — line `i+1` is inside a `#[cfg(test)]` module.
    pub in_test: Vec<bool>,
    /// Resolved allow directives.
    pub allows: Vec<Allow>,
    /// Malformed `jitlint::allow` comments (missing reason / bad syntax).
    pub malformed_allows: Vec<(usize, String)>,
    /// Function spans for per-function analyses.
    pub functions: Vec<FnSpan>,
    /// `(comment_line, rule)` pairs whose allow directive suppressed at
    /// least one finding this run — the complement feeds `unused_allow`.
    pub allow_hits: RefCell<BTreeSet<(usize, String)>>,
}

/// A resolved `jitlint::allow` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule names listed in the directive.
    pub rules: Vec<String>,
    /// The code line (1-indexed) this directive suppresses.
    pub target_line: usize,
    /// The line the comment itself is on.
    pub comment_line: usize,
    /// Justification text after the colon.
    pub reason: String,
}

/// A function body located in the file.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Enclosing inherent/trait-impl type name, if inside an `impl` block.
    pub impl_type: Option<String>,
    /// Function name.
    pub name: String,
    /// Line containing the `fn` keyword (start of the signature).
    pub sig_start: usize,
    /// First line of the body (the line containing the opening brace).
    pub body_start: usize,
    /// Last line of the body (the line containing the closing brace).
    pub body_end: usize,
}

impl SourceFile {
    /// Parses `text` into the source model.
    pub fn parse(rel_path: PathBuf, crate_dir: String, module: String, text: &str) -> SourceFile {
        Self::parse_kind(rel_path, crate_dir, module, FileKind::Lib, text)
    }

    /// Parses `text` into the source model with an explicit [`FileKind`].
    pub fn parse_kind(
        rel_path: PathBuf,
        crate_dir: String,
        module: String,
        kind: FileKind,
        text: &str,
    ) -> SourceFile {
        let lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let (masked, comments) = mask_lines(text, lines.len());
        let in_test = find_test_regions(&masked);
        let (allows, malformed_allows) = find_allows(&comments, &masked);
        let functions = find_functions(&masked);
        SourceFile {
            rel_path,
            crate_dir,
            module,
            kind,
            lines,
            masked,
            in_test,
            allows,
            malformed_allows,
            functions,
            allow_hits: RefCell::new(BTreeSet::new()),
        }
    }

    /// Whether `rule` is suppressed at `line` by an allow directive.
    /// A match is recorded so `unused_allow` can report directives that
    /// no longer suppress anything.
    pub fn allowed(&self, rule: &str, line: usize) -> Option<&Allow> {
        let hit = self
            .allows
            .iter()
            .find(|a| a.target_line == line && a.rules.iter().any(|r| r == rule));
        if let Some(a) = hit {
            self.allow_hits
                .borrow_mut()
                .insert((a.comment_line, rule.to_string()));
        }
        hit
    }

    /// Whether the (1-indexed) line lies in a `#[cfg(test)]` module.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test.get(line - 1).copied().unwrap_or(false)
    }
}

/// Blanks comments, strings, char literals, and raw strings to spaces,
/// preserving line structure so byte columns stay meaningful. Also
/// returns, per line, the text of any plain `//` comment (doc comments
/// and string contents excluded) so directive parsing can't be fooled
/// by markers inside literals or documentation.
fn mask_lines(text: &str, line_count: usize) -> (Vec<String>, Vec<String>) {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Code,
        LineComment { doc: bool },
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }

    let mut out: Vec<String> = Vec::with_capacity(line_count);
    let mut comments: Vec<String> = Vec::with_capacity(line_count);
    let mut cur = String::new();
    let mut cur_comment = String::new();
    let mut st = St::Code;
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        if c == '\n' {
            out.push(std::mem::take(&mut cur));
            comments.push(std::mem::take(&mut cur_comment));
            if matches!(st, St::LineComment { .. }) {
                st = St::Code;
            }
            i += 1;
            continue;
        }
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    let doc = matches!(bytes.get(i + 2), Some('/') | Some('!'));
                    st = St::LineComment { doc };
                    cur.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    cur.push_str("  ");
                    i += 2;
                }
                '"' => {
                    st = St::Str;
                    cur.push(' ');
                    i += 1;
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string: r"..." or r#"..."# (any #-count).
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            cur.push(' ');
                        }
                        i = j + 1;
                    } else {
                        cur.push(c);
                        i += 1;
                    }
                }
                'b' if next == Some('"') => {
                    st = St::Str;
                    cur.push_str("  ");
                    i += 2;
                }
                '\'' => {
                    // Distinguish char literal from lifetime: a lifetime is
                    // `'ident` NOT followed by a closing quote.
                    let is_lifetime = match (bytes.get(i + 1), bytes.get(i + 2)) {
                        (Some(c1), Some('\'')) if *c1 != '\\' => false, // 'x'
                        (Some(c1), _) if c1.is_alphabetic() || *c1 == '_' => true,
                        _ => false,
                    };
                    if is_lifetime {
                        cur.push(c);
                        i += 1;
                    } else {
                        st = St::Char;
                        cur.push(' ');
                        i += 1;
                    }
                }
                _ => {
                    cur.push(c);
                    i += 1;
                }
            },
            St::LineComment { doc } => {
                if !doc {
                    cur_comment.push(c);
                }
                cur.push(' ');
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    cur.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    cur.push_str("  ");
                    i += 2;
                } else {
                    cur.push(' ');
                    i += 1;
                }
            }
            St::Str => match c {
                '\\' => {
                    cur.push_str("  ");
                    i += 2;
                }
                '"' => {
                    st = St::Code;
                    cur.push(' ');
                    i += 1;
                }
                _ => {
                    cur.push(' ');
                    i += 1;
                }
            },
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if bytes.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        st = St::Code;
                        for _ in 0..=hashes as usize {
                            cur.push(' ');
                        }
                        i += 1 + hashes as usize;
                    } else {
                        cur.push(' ');
                        i += 1;
                    }
                } else {
                    cur.push(' ');
                    i += 1;
                }
            }
            St::Char => match c {
                '\\' => {
                    cur.push_str("  ");
                    i += 2;
                }
                '\'' => {
                    st = St::Code;
                    cur.push(' ');
                    i += 1;
                }
                _ => {
                    cur.push(' ');
                    i += 1;
                }
            },
        }
    }
    out.push(cur);
    comments.push(cur_comment);
    while out.len() < line_count {
        out.push(String::new());
        comments.push(String::new());
    }
    out.truncate(line_count.max(1));
    comments.truncate(line_count.max(1));
    (out, comments)
}

/// Marks line ranges of `#[cfg(test)] mod … { … }` blocks.
fn find_test_regions(masked: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; masked.len()];
    let mut depth: i64 = 0;
    // (start_depth) of an active test module body; None when outside.
    let mut test_until_depth: Option<i64> = None;
    // A `#[cfg(test)]` attribute was seen and we await the `mod`'s `{`.
    let mut pending_attr = false;
    let mut pending_mod = false;

    for (idx, line) in masked.iter().enumerate() {
        if test_until_depth.is_none()
            && (line.contains("#[cfg(test)]") || line.contains("#[cfg(all(test"))
        {
            pending_attr = true;
        }
        if pending_attr && !pending_mod && contains_word(line, "mod") {
            pending_mod = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_mod && test_until_depth.is_none() {
                        test_until_depth = Some(depth);
                        pending_attr = false;
                        pending_mod = false;
                    }
                }
                '}' => {
                    if let Some(d) = test_until_depth {
                        if depth == d {
                            test_until_depth = None;
                            // The closing-brace line itself is still test.
                            in_test[idx] = true;
                        }
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        if test_until_depth.is_some() || pending_mod || pending_attr {
            in_test[idx] = true;
        }
    }
    in_test
}

/// Extracts `jitlint::allow` directives from comments.
///
/// Grammar: `// jitlint::allow(rule[, rule…]): non-empty reason`.
/// A trailing comment suppresses its own line; a comment-only line
/// suppresses the next line that contains code.
fn find_allows(comments: &[String], masked: &[String]) -> (Vec<Allow>, Vec<(usize, String)>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();

    for (idx, comment) in comments.iter().enumerate() {
        // `comments` holds only plain `//` comment text — markers inside
        // string literals or doc comments never reach this scan.
        let Some(pos) = comment.find("jitlint::allow") else {
            continue;
        };
        let line_no = idx + 1;
        let rest = &comment[pos + "jitlint::allow".len()..];
        let parsed = (|| {
            let rest = rest.trim_start();
            let inner = rest.strip_prefix('(')?;
            let close = inner.find(')')?;
            let rules: Vec<String> = inner[..close]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if rules.is_empty() {
                return None;
            }
            let after = inner[close + 1..].trim_start();
            let reason = after.strip_prefix(':')?.trim();
            if reason.is_empty() {
                return None;
            }
            Some((rules, reason.to_string()))
        })();
        let Some((rules, reason)) = parsed else {
            malformed.push((
                line_no,
                "malformed jitlint::allow — expected `// jitlint::allow(rule[, rule]): reason`"
                    .to_string(),
            ));
            continue;
        };
        // Trailing comment (code before `//` on the masked line) targets
        // its own line; otherwise the next line containing code.
        let code_here = !masked[idx].trim().is_empty();
        let target_line = if code_here {
            line_no
        } else {
            let mut t = None;
            for (j, m) in masked.iter().enumerate().skip(idx + 1) {
                if !m.trim().is_empty() {
                    t = Some(j + 1);
                    break;
                }
            }
            match t {
                Some(t) => t,
                None => {
                    malformed.push((line_no, "jitlint::allow targets no code line".to_string()));
                    continue;
                }
            }
        };
        allows.push(Allow {
            rules,
            target_line,
            comment_line: line_no,
            reason,
        });
    }
    (allows, malformed)
}

/// Locates function bodies and their enclosing `impl` type, by tracking
/// brace depth over the masked source.
fn find_functions(masked: &[String]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    // Stack of (depth_at_open, Option<impl_type>) for impl blocks.
    let mut impl_stack: Vec<(i64, String)> = Vec::new();
    // Pending fn awaiting its opening brace: (impl_type, name, sig_line).
    let mut pending_fn: Option<(Option<String>, String, usize)> = None;
    // Open fn bodies: (close_depth, index into out).
    let mut fn_stack: Vec<(i64, usize)> = Vec::new();
    // Pending impl type awaiting `{`.
    let mut pending_impl: Option<String> = None;

    for (idx, line) in masked.iter().enumerate() {
        let line_no = idx + 1;
        if let Some(ty) = parse_impl_type(line) {
            pending_impl = Some(ty);
        }
        if let Some(name) = parse_fn_name(line) {
            let impl_ty = impl_stack.last().map(|(_, t)| t.clone());
            pending_fn = Some((impl_ty, name, line_no));
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some((impl_ty, name, sig_line)) = pending_fn.take() {
                        out.push(FnSpan {
                            impl_type: impl_ty,
                            name,
                            sig_start: sig_line,
                            body_start: line_no,
                            body_end: line_no,
                        });
                        fn_stack.push((depth, out.len() - 1));
                    } else if let Some(ty) = pending_impl.take() {
                        impl_stack.push((depth, ty));
                    }
                }
                '}' => {
                    if let Some(&(d, i)) = fn_stack.last() {
                        if depth == d {
                            out[i].body_end = line_no;
                            fn_stack.pop();
                        }
                    }
                    if impl_stack.last().is_some_and(|&(d, _)| depth == d) {
                        impl_stack.pop();
                    }
                    depth -= 1;
                }
                // `fn name(...);` in traits — signature without body.
                ';' if pending_fn.is_some()
                    && depth == fn_stack.last().map(|&(d, _)| d).unwrap_or(0) =>
                {
                    pending_fn = None;
                }
                _ => {}
            }
        }
    }
    out
}

/// Parses `impl [<…>] [Trait for] Type …` returning the Type name.
fn parse_impl_type(masked_line: &str) -> Option<String> {
    let t = masked_line.trim_start();
    let rest = t.strip_prefix("impl")?;
    let rest = if let Some(r) = rest.strip_prefix('<') {
        // Skip generic params to the matching `>` (flat scan is enough
        // for the nesting that appears in practice).
        let mut level = 1;
        let mut pos = None;
        for (i, c) in r.char_indices() {
            match c {
                '<' => level += 1,
                '>' => {
                    level -= 1;
                    if level == 0 {
                        pos = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        &r[pos? + 1..]
    } else if rest.starts_with(char::is_whitespace) {
        rest
    } else {
        return None;
    };
    // `A for B` → B; otherwise first path segment.
    let body = rest.split('{').next().unwrap_or(rest);
    let chosen = match body.find(" for ") {
        Some(p) => &body[p + 5..],
        None => body,
    };
    let name: String = chosen
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Parses a `fn name` on this line, if any.
fn parse_fn_name(masked_line: &str) -> Option<String> {
    let mut search = 0usize;
    let line = masked_line;
    while let Some(rel) = line[search..].find("fn ") {
        let at = search + rel;
        // Word boundary before `fn`.
        let ok_before = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if ok_before {
            let name: String = line[at + 3..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
        search = at + 3;
    }
    None
}

/// Word-boundary containment check on a masked line.
pub fn contains_word(line: &str, word: &str) -> bool {
    find_word(line, word, 0).is_some()
}

/// Finds `word` at a word boundary in `line`, starting at `from`.
pub fn find_word(line: &str, word: &str, from: usize) -> Option<usize> {
    let mut search = from;
    while let Some(rel) = line.get(search..)?.find(word) {
        let at = search + rel;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = after >= line.len()
            || !line[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        search = at + word.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sf(text: &str) -> SourceFile {
        SourceFile::parse(
            PathBuf::from("x.rs"),
            "core".into(),
            "checkpoint".into(),
            text,
        )
    }

    #[test]
    fn masking_strips_strings_and_comments() {
        let f = sf("let a = \"panic!()\"; // unwrap()\nlet b = 1; /* expect( */ let c = 2;\n");
        assert!(!f.masked[0].contains("panic!"));
        assert!(!f.masked[0].contains("unwrap"));
        assert!(f.masked[0].contains("let a ="));
        assert!(!f.masked[1].contains("expect"));
        assert!(f.masked[1].contains("let c = 2;"));
    }

    #[test]
    fn masking_handles_raw_strings_and_chars() {
        let f = sf("let s = r#\"unwrap()\"#;\nlet c = '\\''; let l: &'static str = x;\n");
        assert!(!f.masked[0].contains("unwrap"));
        assert!(f.masked[1].contains("static"));
    }

    #[test]
    fn test_region_detection() {
        let f = sf("fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n");
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn allow_directives_resolve_targets() {
        let text = "\
// jitlint::allow(panic_path): startup is infallible here
let a = x.unwrap();
let b = y.unwrap(); // jitlint::allow(panic_path): checked above
// jitlint::allow(panic_path)
let c = z.unwrap();
";
        let f = sf(text);
        assert!(f.allowed("panic_path", 2).is_some());
        assert!(f.allowed("panic_path", 3).is_some());
        assert!(
            f.allowed("panic_path", 5).is_none(),
            "missing reason is malformed"
        );
        assert_eq!(f.malformed_allows.len(), 1);
    }

    #[test]
    fn function_spans_and_impl_types() {
        let text = "\
impl Watchdog {
    pub fn arm(&self) {
        self.state.lock();
    }
}
fn free() {
}
impl Drop for Guard {
    fn drop(&mut self) {}
}
";
        let f = sf(text);
        let names: Vec<_> = f
            .functions
            .iter()
            .map(|s| (s.impl_type.clone(), s.name.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                (Some("Watchdog".into()), "arm".into()),
                (None, "free".into()),
                (Some("Guard".into()), "drop".into()),
            ]
        );
        assert_eq!(f.functions[0].body_start, 2);
        assert_eq!(f.functions[0].body_end, 4);
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("thread::sleep(d)", "sleep"));
        assert!(!contains_word("sleeper(d)", "sleep"));
        assert!(!contains_word("do_sleep(d)", "sleep"));
    }
}

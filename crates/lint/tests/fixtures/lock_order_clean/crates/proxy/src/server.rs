//! Fixture negative: every function acquires in the same global order
//! (gpu -> oplog -> barrier) — no cycle to report.

pub struct Server {
    gpu: Mutex<u32>,
    oplog: Mutex<u32>,
    barrier: Mutex<u32>,
}

impl Server {
    pub fn submit(&self) {
        let _g = self.gpu.lock();
        let _o = self.oplog.lock();
    }

    pub fn drain(&self) {
        let _o = self.oplog.lock();
        let _b = self.barrier.lock();
    }

    pub fn fire(&self) {
        let _g = self.gpu.lock();
        let _b = self.barrier.lock();
    }
}

//! Fixture: wall-clock sleeps in library code.

use std::thread::sleep;
use std::time::Duration;

pub fn bad_qualified() {
    std::thread::sleep(Duration::from_millis(5));
}

pub fn bad_bare() {
    sleep(Duration::from_millis(5));
}

pub fn allowed_sleep() {
    // jitlint::allow(virtual_time): fixture — bounded startup grace
    std::thread::sleep(Duration::from_millis(1));
}

pub fn sleepy_name_is_fine(sleeper: fn()) {
    sleeper();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_pace_real_threads() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}

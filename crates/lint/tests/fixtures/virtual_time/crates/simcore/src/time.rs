//! Fixture: the sim clock itself is allowlisted.

pub fn tick() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

//! Fixture: malformed allow directives.

pub fn missing_reason(x: Option<u32>) -> u32 {
    // jitlint::allow(panic_path)
    x.unwrap()
}

pub fn empty_rule_list(x: Option<u32>) -> u32 {
    // jitlint::allow(): because
    x.unwrap()
}

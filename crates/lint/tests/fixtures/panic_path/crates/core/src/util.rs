//! Fixture: NOT a recovery-critical module — unwrap here is fine.

pub fn out_of_scope(x: Option<u32>) -> u32 {
    x.unwrap()
}

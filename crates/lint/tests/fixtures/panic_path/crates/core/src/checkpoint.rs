//! Fixture: recovery-critical module with seeded panic sites.

pub fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("boom")
}

pub fn bad_macro() {
    panic!("seeded");
}

pub fn bad_todo() {
    todo!()
}

pub fn bad_unsafe(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn allowed_unwrap(x: Option<u32>) -> u32 {
    // jitlint::allow(panic_path): fixture — checked by caller
    x.unwrap()
}

pub fn string_is_not_code() -> &'static str {
    "unwrap() panic! todo!"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unwrap_is_still_flagged() {
        Some(1).unwrap();
    }
}

//! condvar_wait_loop fixture: waits must sit in a predicate loop.

struct Comm {
    state: Mutex<State>,
    cv: Condvar,
}

impl Comm {
    // VIOLATION: `if` is not a loop — a spurious wakeup or a second
    // waiter racing the predicate leaves this thread running on a stale
    // condition.
    fn bare_wait(&self) {
        let mut st = self.state.lock();
        if st.pending > 0 {
            self.cv.wait(&mut st);
        }
    }

    // Clean: predicate re-checked in a `while`.
    fn looped_wait(&self) {
        let mut st = self.state.lock();
        while st.pending > 0 {
            self.cv.wait(&mut st);
        }
    }

    // Clean: `wait_while` carries its own predicate loop.
    fn predicate_wait(&self) {
        let mut st = self.state.lock();
        self.cv.wait_while(&mut st, |s| s.pending > 0);
    }

    // Suppressed with a reason: single-waiter startup handshake.
    fn allowed_wait(&self) {
        let mut st = self.state.lock();
        // jitlint::allow(condvar_wait_loop): one-shot startup handshake, single waiter, no spurious-wakeup hazard in the sim
        self.cv.wait(&mut st);
    }
}

//! Fixture: closes the cycle — barrier -> gpu.

pub struct Watchdog {
    barrier: Mutex<u32>,
    gpu: Mutex<u32>,
}

impl Watchdog {
    pub fn fire(&self) {
        let _b = self.barrier.lock();
        let _g = self.gpu.lock();
    }
}

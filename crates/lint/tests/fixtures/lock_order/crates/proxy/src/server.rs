//! Fixture: a 3-lock acquisition cycle split across three functions
//! (and two crates) — no single function is suspicious on its own.

pub struct Server {
    gpu: Mutex<u32>,
    oplog: Mutex<u32>,
}

impl Server {
    // gpu -> oplog
    pub fn submit(&self) {
        let _g = self.gpu.lock();
        let _o = self.oplog.lock();
    }

    // oplog -> barrier (rustfmt-split chain on purpose)
    pub fn drain(&self, barrier: &Mutex<u32>) {
        let _o = self.oplog.lock();
        let _b = barrier
            .lock();
    }

    // Consistent-order pair that must NOT be reported: gpu -> oplog again.
    pub fn replay(&self) {
        let _g = self.gpu.lock();
        let _o = self.oplog.lock();
    }
}

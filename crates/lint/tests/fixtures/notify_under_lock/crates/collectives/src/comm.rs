//! notify_under_lock fixture: a minimal reproduction of the PR-5
//! `Communicator::abort()` bug — the notify raced waiters because it ran
//! after the state lock was released.

struct Comm {
    state: Mutex<State>,
    cv: Condvar,
}

impl Comm {
    // VIOLATION (the PR-5 shape): the guard dies at the inner block's
    // end, so the notify runs unlocked. A waiter that observed
    // `aborted == false` but has not parked yet misses the wake and
    // sleeps through the abort.
    fn abort(&self) {
        {
            let mut st = self.state.lock();
            st.aborted = true;
        }
        self.cv.notify_all();
    }

    // Clean (the PR-5 fix): the lock is held across the notify, closing
    // the predicate-check/park window.
    fn abort_fixed(&self) {
        let mut st = self.state.lock();
        st.aborted = true;
        self.cv.notify_all();
    }

    // Suppressed with a reason.
    fn poke(&self) {
        // jitlint::allow(notify_under_lock): waiters use wait_for and re-poll an atomic; a lost wake only costs one 2ms tick
        self.cv.notify_one();
    }
}

//! blocking_under_lock fixture: nothing may park while holding a mutex
//! the blocking call does not itself release.

struct Watchdog {
    outstanding: Mutex<Ops>,
    registry: Mutex<Peers>,
    cv: Condvar,
}

impl Watchdog {
    // VIOLATION: the wait releases `st` (its own guard) but keeps
    // `peers` held for the whole park — every other thread needing
    // `registry` hangs until this waiter wakes.
    fn drain_with_registry(&self) {
        let peers = self.registry.lock();
        let mut st = self.outstanding.lock();
        while st.inflight > 0 {
            self.cv.wait(&mut st);
        }
    }

    // VIOLATION: a join releases nothing; the worker being joined may
    // itself need `outstanding`.
    fn shutdown(&self) {
        let st = self.outstanding.lock();
        self.worker.join();
        drop(st);
    }

    // Clean: guard dropped before the blocking call.
    fn shutdown_narrowed(&self) {
        let st = self.outstanding.lock();
        drop(st);
        self.worker.join();
    }

    // Clean: the wait's own guard is the only lock held.
    fn drain(&self) {
        let mut st = self.outstanding.lock();
        while st.inflight > 0 {
            self.cv.wait(&mut st);
        }
    }

    // Suppressed with a reason.
    fn drain_allowed(&self) {
        let peers = self.registry.lock();
        let mut st = self.outstanding.lock();
        while st.inflight > 0 {
            // jitlint::allow(blocking_under_lock): registry is read-only during drain and no waker path acquires it
            self.cv.wait(&mut st);
        }
    }
}

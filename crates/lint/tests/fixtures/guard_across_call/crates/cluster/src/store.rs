//! guard_across_call fixture, callee side: a module with a lock of its
//! own that the caller's held guard gets ordered against.

struct SharedStore {
    s: Mutex<Shards>,
}

impl SharedStore {
    fn persist_batch(&self, batch: &Batch) {
        let mut s = self.s.lock();
        s.write(batch);
    }
}

//! guard_across_call fixture, caller side: holding a guard across a
//! call into another locking module.

struct Server {
    outstanding: Mutex<Ops>,
}

impl Server {
    // VIOLATION: `outstanding` stays held across `persist_batch`, which
    // lives in another crate and takes the store lock — a long hold
    // that orders `proxy::outstanding` before `cluster::s` forever.
    fn flush(&self, store: &SharedStore) {
        let ops = self.outstanding.lock();
        store.persist_batch(&ops.batch);
    }

    // Clean: copy what you need, drop, then call.
    fn flush_narrowed(&self, store: &SharedStore) {
        let batch = {
            let ops = self.outstanding.lock();
            ops.batch.clone()
        };
        store.persist_batch(&batch);
    }

    // Suppressed with a reason.
    fn flush_allowed(&self, store: &SharedStore) {
        let ops = self.outstanding.lock();
        // jitlint::allow(guard_across_call): store never calls back into proxy, and the batch is too large to clone per flush
        store.persist_batch(&ops.batch);
    }
}

//! Fixture: serializable persisted types with and without a schema
//! version marker.

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MissingVersion {
    pub step: u64,
}

#[derive(Serialize)]
pub enum VersionedOp {
    Launch,
    Sync,
}

impl VersionedOp {
    pub const SCHEMA_VERSION: u16 = 1;
}

#[derive(
    Debug,
    Serialize,
)]
pub struct MultiLineDerive {
    pub rank: u32,
}

impl MultiLineDerive {
    pub const SCHEMA_VERSION: u16 = 3;
}

// jitlint::allow(checkpoint_schema): fixture — transient wire frame, never persisted
#[derive(Serialize)]
pub struct AllowedTransient {
    pub seq: u64,
}

#[derive(Serialize)]
pub struct NotPersistedModule;

//! Fixture: NOT a persistence module — Serialize here needs no marker.

#[derive(Serialize)]
pub struct EphemeralFrame {
    pub seq: u64,
}

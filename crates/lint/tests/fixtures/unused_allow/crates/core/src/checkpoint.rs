//! unused_allow fixture: suppressions must suppress something.

impl Writer {
    // VIOLATION: this directive hits nothing — the line below it never
    // trips panic_path, so the exemption is stale and must be removed.
    fn save(&self) {
        // jitlint::allow(panic_path): historical unwrap, since refactored away
        let n = self.frames.len();
    }

    // Clean: the directive below earns its keep.
    fn load(&self) {
        // jitlint::allow(panic_path): length checked by the caller's schema validation
        let first = self.frames.first().unwrap();
    }
}

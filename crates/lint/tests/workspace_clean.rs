//! Self-enforcement: the workspace this analyzer ships in must itself
//! be clean. Every new panic site, lock inversion, wall-clock sleep, or
//! unversioned persisted type in recovery-critical code fails `cargo
//! test` until it is fixed or explicitly justified with a
//! `jitlint::allow` directive.

use std::path::PathBuf;

#[test]
fn workspace_has_no_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let findings = lint::analyze(&root).expect("workspace parses");
    assert!(
        findings.is_empty(),
        "jitlint found {} violation(s) — fix them or add `// jitlint::allow(<rule>): <reason>`:\n{}",
        findings.len(),
        lint::report::render_text(&findings)
    );
}

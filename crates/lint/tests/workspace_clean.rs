//! Self-enforcement: the workspace this analyzer ships in must itself
//! be clean under all eight rules — `panic_path`, `lock_order`,
//! `virtual_time`, `checkpoint_schema`, `condvar_wait_loop`,
//! `notify_under_lock`, `blocking_under_lock`, and `guard_across_call`
//! (plus the `allow_syntax`/`unused_allow` meta checks). Every new panic
//! site, lock inversion, wall-clock sleep, unversioned persisted type,
//! bare condvar wait, unlocked notify, blocking call under a lock, or
//! cross-module long hold fails `cargo test` until it is fixed or
//! explicitly justified with a `jitlint::allow` directive. Reverting the
//! PR-5 lost-wakeup fix in `Communicator::abort()`, for instance, fails
//! this test via `notify_under_lock`.

use std::path::PathBuf;

#[test]
fn workspace_has_no_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let findings = lint::analyze(&root).expect("workspace parses");
    assert!(
        findings.is_empty(),
        "jitlint found {} violation(s) — fix them or add `// jitlint::allow(<rule>): <reason>`:\n{}",
        findings.len(),
        lint::report::render_text(&findings)
    );
}

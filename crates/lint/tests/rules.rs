//! Fixture-driven rule tests: each fixture directory under
//! `tests/fixtures/<case>/` is a miniature workspace root; every rule
//! family has at least one seeded violation (positive) and one
//! construct it must NOT flag (negative).

use lint::report::Finding;
use std::path::PathBuf;

fn fixture(case: &str) -> Vec<Finding> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(case);
    lint::analyze(&root).expect("fixture root should parse")
}

fn rule_lines(findings: &[Finding], rule: &str, file_ends_with: &str) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.file.to_string_lossy().ends_with(file_ends_with))
        .map(|f| f.line)
        .collect()
}

#[test]
fn panic_path_catches_seeded_violations() {
    let findings = fixture("panic_path");
    let lines = rule_lines(&findings, "panic_path", "checkpoint.rs");
    // unwrap, expect, panic!, todo!, unsafe, and the test-module unwrap.
    assert_eq!(lines, vec![4, 8, 12, 16, 20, 36], "found: {findings:#?}");
    // Allowed site, string literal, and out-of-scope module stay silent.
    assert!(rule_lines(&findings, "panic_path", "util.rs").is_empty());
    assert_eq!(findings.len(), 6, "no other rules fire: {findings:#?}");
}

#[test]
fn lock_order_reports_cross_function_cycle_of_length_three() {
    let findings = fixture("lock_order");
    let cycles: Vec<&Finding> = findings.iter().filter(|f| f.rule == "lock_order").collect();
    assert_eq!(cycles.len(), 1, "exactly one cycle: {findings:#?}");
    let msg = &cycles[0].message;
    for node in ["proxy::gpu", "proxy::oplog", "proxy::barrier"] {
        assert!(msg.contains(node), "cycle names `{node}`: {msg}");
    }
    // Each witness names its function and location.
    assert!(msg.contains("Server::submit"), "{msg}");
    assert!(msg.contains("Watchdog::fire"), "{msg}");
}

#[test]
fn lock_order_is_silent_on_consistent_order() {
    let findings = fixture("lock_order_clean");
    assert!(findings.is_empty(), "no cycle expected: {findings:#?}");
}

#[test]
fn virtual_time_catches_sleeps_outside_sim_clock() {
    let findings = fixture("virtual_time");
    let lines = rule_lines(&findings, "virtual_time", "transparent.rs");
    // Qualified and bare (imported) sleeps; allowed + test sleeps silent.
    assert_eq!(lines, vec![7, 11], "found: {findings:#?}");
    assert!(
        rule_lines(&findings, "virtual_time", "time.rs").is_empty(),
        "sim clock is allowlisted: {findings:#?}"
    );
    assert_eq!(findings.len(), 2);
}

#[test]
fn schema_requires_version_markers_on_persisted_types() {
    let findings = fixture("schema");
    let lines = rule_lines(&findings, "checkpoint_schema", "oplog.rs");
    assert_eq!(lines.len(), 2, "found: {findings:#?}");
    // `MissingVersion` (line 4) and the final unversioned struct.
    assert!(findings
        .iter()
        .any(|f| f.line == 4 && f.message.contains("MissingVersion")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("NotPersistedModule")));
    // Versioned, multi-line-derive-versioned, allowed, and
    // non-persistence-module types stay silent.
    assert!(rule_lines(&findings, "checkpoint_schema", "frames.rs").is_empty());
}

#[test]
fn allow_syntax_flags_malformed_directives() {
    let findings = fixture("allow_syntax");
    let lines = rule_lines(&findings, "allow_syntax", "checkpoint.rs");
    assert_eq!(lines, vec![4, 9], "found: {findings:#?}");
    // Malformed allows do not suppress — the unwraps are still findings.
    let panics = rule_lines(&findings, "panic_path", "checkpoint.rs");
    assert_eq!(panics, vec![5, 10]);
}

#[test]
fn condvar_wait_loop_requires_predicate_loops() {
    let findings = fixture("condvar_wait_loop");
    let lines = rule_lines(&findings, "condvar_wait_loop", "comm.rs");
    // The bare `if`-guarded wait; looped, wait_while, and allowed waits
    // stay silent.
    assert_eq!(lines, vec![15], "found: {findings:#?}");
    assert_eq!(findings.len(), 1, "no other rules fire: {findings:#?}");
}

#[test]
fn notify_under_lock_catches_the_pr5_abort_shape() {
    let findings = fixture("notify_under_lock");
    let lines = rule_lines(&findings, "notify_under_lock", "comm.rs");
    // The notify after the guard's narrow block closes — the exact
    // lost-wakeup bug PR 5 fixed in `Communicator::abort()`. The
    // lock-held fix and the justified suppression stay silent.
    assert_eq!(lines, vec![20], "found: {findings:#?}");
    assert_eq!(findings.len(), 1, "no other rules fire: {findings:#?}");
}

#[test]
fn blocking_under_lock_flags_second_guard_and_join() {
    let findings = fixture("blocking_under_lock");
    let lines = rule_lines(&findings, "blocking_under_lock", "watchdog.rs");
    // A wait parking with a second guard held, and a join under a lock;
    // the narrowed and single-guard variants stay silent.
    assert_eq!(lines, vec![18, 26], "found: {findings:#?}");
    assert_eq!(findings.len(), 2, "no other rules fire: {findings:#?}");
}

#[test]
fn guard_across_call_flags_cross_module_holds() {
    let findings = fixture("guard_across_call");
    let across = rule_lines(&findings, "guard_across_call", "server.rs");
    // The long hold across `persist_batch` (another crate, takes the
    // store lock); the clone-drop-call variant and the justified
    // suppression stay silent.
    assert_eq!(across, vec![14], "found: {findings:#?}");
    let f = findings
        .iter()
        .find(|f| f.rule == "guard_across_call")
        .unwrap();
    assert!(f.message.contains("`cluster::s`"), "{}", f.message);
    assert_eq!(findings.len(), 1, "no other rules fire: {findings:#?}");
}

#[test]
fn unused_allow_flags_stale_suppressions() {
    let findings = fixture("unused_allow");
    let lines = rule_lines(&findings, "unused_allow", "checkpoint.rs");
    // The directive with nothing left to suppress; the one covering a
    // live unwrap stays silent (and keeps suppressing it).
    assert_eq!(lines, vec![7], "found: {findings:#?}");
    assert_eq!(findings.len(), 1, "no other rules fire: {findings:#?}");
}

#[test]
fn fix_allow_inserts_directives_that_suppress() {
    // Copy a fixture into a temp root, run --fix-allow semantics via the
    // library, and verify a re-run is clean (modulo the TODO reasons).
    let src = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/virtual_time");
    let dst = std::env::temp_dir().join(format!("jitlint-fix-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dst);
    copy_tree(&src, &dst).expect("copy fixture");

    let before = lint::analyze(&dst).expect("analyze");
    assert!(!before.is_empty());
    let inserted = lint::apply_fix_allow(&dst, &before).expect("fix");
    assert_eq!(inserted, before.len());
    let after = lint::analyze(&dst).expect("re-analyze");
    assert!(after.is_empty(), "fix-allow should suppress: {after:#?}");

    let _ = std::fs::remove_dir_all(&dst);
}

fn copy_tree(src: &std::path::Path, dst: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        let to = dst.join(entry.file_name());
        if entry.file_type()?.is_dir() {
            copy_tree(&entry.path(), &to)?;
        } else {
            std::fs::copy(entry.path(), &to)?;
        }
    }
    Ok(())
}

//! Periodic checkpointing policies and the restart-recovery launcher.

use cluster::{FailureInjector, Scheduler, SharedStore};
use dltrain::{JobSetup, RankTrainer, TrainConfig};
use jitckpt::checkpoint::{self, CkptKind};
use proxy::{DirectExecutor, Executor, Watchdog};
use simcore::cost::{CostModel, StorageTier};
use simcore::sync::Mutex;
use simcore::{RankId, SimError, SimResult, SimTime};
use simgpu::Gpu;
use std::sync::Arc;
use std::time::Duration;

/// Periodic checkpointing mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Blocking write to persistent disk (`torch.save`).
    PcDisk,
    /// Blocking write to host memory (tmpfs), asynchronous persistence.
    PcMem,
    /// CheckFreq-style pipelined snapshotting.
    CheckFreq,
    /// Low-frequency (once/day) checkpointing to pair with JIT.
    PcDaily,
}

impl PolicyKind {
    /// Human-readable label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::PcDisk => "PC_disk",
            PolicyKind::PcMem => "PC_mem",
            PolicyKind::CheckFreq => "CheckFreq",
            PolicyKind::PcDaily => "PC_1/day",
        }
    }

    /// All policies, for sweeps.
    pub fn all() -> [PolicyKind; 4] {
        [
            PolicyKind::PcDisk,
            PolicyKind::PcMem,
            PolicyKind::CheckFreq,
            PolicyKind::PcDaily,
        ]
    }
}

/// Fraction of the GPU→host snapshot that CheckFreq cannot overlap with
/// the next iteration's compute (its measured stall is roughly half of a
/// blocking in-memory checkpoint — Table 3's CheckFreq ≈ PC_mem / 2).
const CHECKFREQ_STALL_FRACTION: f64 = 0.5;

/// The *blocking* (critical-path) cost of one checkpoint of
/// `state_bytes` under a policy — the `o` that enters the §5 analysis.
pub fn blocking_overhead(
    kind: PolicyKind,
    state_bytes: u64,
    cost: &CostModel,
    ranks_per_node: usize,
) -> SimTime {
    match kind {
        PolicyKind::PcDisk | PolicyKind::PcDaily => {
            cost.checkpoint_write(state_bytes, StorageTier::Disk, ranks_per_node)
        }
        PolicyKind::PcMem => {
            cost.checkpoint_write(state_bytes, StorageTier::HostMemory, ranks_per_node)
        }
        PolicyKind::CheckFreq => {
            let full = cost.checkpoint_write(state_bytes, StorageTier::HostMemory, ranks_per_node);
            SimTime::from_secs(full.as_secs() * CHECKFREQ_STALL_FRACTION)
        }
    }
}

/// Configuration of a periodic-checkpointing run.
#[derive(Debug, Clone)]
pub struct PeriodicConfig {
    /// Mechanism.
    pub kind: PolicyKind,
    /// Checkpoint every `every_iters` iterations.
    pub every_iters: u64,
    /// Hang-detection timeout of the job monitoring plane (real time).
    pub monitor_timeout: Duration,
    /// Sharded-write tuning (shard size, worker pool, delta mode). Delta
    /// pays off especially here: periodic checkpoints of adjacent
    /// generations share most of their bytes.
    pub shards: checkpoint::ShardConfig,
}

impl PeriodicConfig {
    /// A policy checkpointing every `k` iterations.
    pub fn every(kind: PolicyKind, k: u64) -> Self {
        PeriodicConfig {
            kind,
            every_iters: k,
            monitor_timeout: Duration::from_millis(1500),
            shards: checkpoint::ShardConfig::default(),
        }
    }
}

/// Result of a periodic-checkpointing job run.
#[derive(Debug)]
pub struct PeriodicOutcome {
    /// Per-rank loss trajectories.
    pub losses: Vec<Vec<f32>>,
    /// Restarts performed.
    pub restarts: u32,
    /// Total iterations re-executed after restarts (the wasted work the
    /// paper's analysis charges as half the checkpoint interval per
    /// failure, per GPU).
    pub wasted_iterations: u64,
    /// Total checkpoints written (all ranks).
    pub checkpoints_written: u64,
    /// Per-rank virtual completion time of the final generation.
    pub finish_times: Vec<SimTime>,
}

/// Classic periodic checkpointing with restart recovery: checkpoints on a
/// schedule; on failure the monitor kills the job and every rank restarts
/// from the newest complete checkpoint, re-executing everything since.
pub fn run_periodic_job(
    cfg: TrainConfig,
    cost: CostModel,
    injector: Arc<FailureInjector>,
    scheduler: Arc<Scheduler>,
    store: Arc<SharedStore>,
    pcfg: PeriodicConfig,
    target_iters: u64,
) -> SimResult<PeriodicOutcome> {
    let layout = cfg.layout;
    let n = layout.world_size();
    let (job, mut assignment) = scheduler.submit(layout)?;
    let mut final_losses: Vec<Vec<f32>> = vec![vec![f32::NAN; target_iters as usize]; n];
    let mut restarts = 0u32;
    let mut wasted_iterations = 0u64;
    let checkpoints_written = Arc::new(Mutex::new(0u64));
    let max_generations = injector.pending_count() as u32 + 2;
    let mut finish_times = vec![SimTime::ZERO; n];
    loop {
        let setup = JobSetup::build(layout, cost.clone(), cfg.ranks_per_node);
        let world = setup.world.clone();
        let clock = setup.clock.clone();
        let per_rank = setup.per_rank.clone();
        let resume = checkpoint::assemble(&store, job, &layout).ok();
        let gen_results = {
            let cfg = cfg.clone();
            let cost = cost.clone();
            let injector = injector.clone();
            let store = store.clone();
            let pcfg = pcfg.clone();
            let assignment_now = assignment.clone();
            let ckpts = checkpoints_written.clone();
            dltrain::run_ranks(n, move |i| {
                let rank = RankId(i as u32);
                let gpu = Gpu::new(assignment_now[i], cost.clone());
                let mut exec = DirectExecutor::new(rank, i, gpu, world.clone());
                // The job monitoring plane: on a hang, kill the job (no
                // checkpoint — that is the difference from JIT).
                let world_w = world.clone();
                let monitor = Watchdog::spawn(pcfg.monitor_timeout, move || {
                    world_w.abort_all();
                })?;
                exec.set_observer(monitor.observer());
                let mut tr = RankTrainer::new(exec, cfg.clone(), &per_rank[i], injector.clone())?;
                let mut resumed_from = 0u64;
                if resume.is_some() {
                    let (state, meta, _rstats) = jitckpt::restore::load_for_rank_parallel(
                        store.as_ref(),
                        job,
                        &layout,
                        rank,
                        &jitckpt::restore::RestoreConfig::default(),
                    )?;
                    let t_restore = cost.process_restart
                        + cost.checkpoint_read(
                            meta.logical_bytes,
                            StorageTier::Disk,
                            cfg.ranks_per_node,
                        );
                    tr.exec.clock().advance(i, t_restore);
                    tr.restore(&state)?;
                    resumed_from = state.iteration;
                }
                let coord = layout.coord(rank);
                let mut losses: Vec<(u64, f32)> = Vec::new();
                let mut failure: Option<SimError> = None;
                let mut reached = resumed_from;
                for it in resumed_from..target_iters {
                    match tr.train_step() {
                        Ok(l) => {
                            losses.push((it, l.unwrap_or(f32::NAN)));
                            reached = it + 1;
                        }
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    }
                    // Periodic checkpoint at the schedule boundary.
                    if (it + 1) % pcfg.every_iters == 0 {
                        let state = tr.state_snapshot()?;
                        let t = blocking_overhead(
                            pcfg.kind,
                            state.logical_bytes,
                            &cost,
                            cfg.ranks_per_node,
                        );
                        tr.exec.clock().advance(i, t);
                        checkpoint::write_checkpoint_with(
                            &store,
                            job,
                            CkptKind::Periodic,
                            rank,
                            coord.stage,
                            coord.part,
                            coord.dp,
                            &state,
                            // Auto-size the pool for this state's shard
                            // count (same policy as the JIT writer).
                            &pcfg.shards.auto_sized_for(&state),
                        )?;
                        *ckpts.lock() += 1;
                    }
                }
                Ok::<_, SimError>((losses, failure, assignment_now[i], resumed_from, reached))
            })
        };
        let mut any_failure = false;
        let mut min_resumed = u64::MAX;
        let mut max_reached = 0u64;
        for (i, res) in gen_results.into_iter().enumerate() {
            let (losses, failure, gpu_id, resumed_from, reached) = res?;
            for (it, l) in losses {
                final_losses[i][it as usize] = l;
            }
            min_resumed = min_resumed.min(resumed_from);
            max_reached = max_reached.max(reached);
            finish_times[i] = clock.now(i);
            if let Some(err) = failure {
                any_failure = true;
                if err.is_hard() {
                    scheduler.report_gpu_failure(job, gpu_id)?;
                }
            }
        }
        if !any_failure {
            break;
        }
        restarts += 1;
        // Wasted work: everything since the checkpoint the next
        // generation will resume from gets re-executed.
        let resume_at = checkpoint::assemble(&store, job, &layout)
            .map(|plan| plan.values().next().map(|c| c.iteration).unwrap_or(0))
            .unwrap_or(0);
        wasted_iterations += max_reached.saturating_sub(resume_at);
        if restarts > max_generations {
            return Err(SimError::Protocol(format!(
                "periodic job did not converge after {restarts} restarts"
            )));
        }
        assignment = scheduler.reschedule(job)?;
    }
    let checkpoints_total = *checkpoints_written.lock();
    Ok(PeriodicOutcome {
        losses: final_losses,
        restarts,
        wasted_iterations,
        checkpoints_written: checkpoints_total,
        finish_times,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::Cluster;
    use simcore::cost::GpuGeneration;
    use simcore::failure::{FailureKind, FailureSpec, Phase};

    fn scheduler() -> Arc<Scheduler> {
        Arc::new(Scheduler::new(Cluster::new(GpuGeneration::V100_32G, 2)))
    }

    #[test]
    fn blocking_overheads_are_ordered() {
        let cost = CostModel::v100();
        let bytes = 4 << 30;
        let disk = blocking_overhead(PolicyKind::PcDisk, bytes, &cost, 8);
        let mem = blocking_overhead(PolicyKind::PcMem, bytes, &cost, 8);
        let cf = blocking_overhead(PolicyKind::CheckFreq, bytes, &cost, 8);
        assert!(disk > mem, "disk slower than tmpfs");
        assert!(mem > cf, "CheckFreq stalls less than blocking PC_mem");
    }

    #[test]
    fn failure_free_periodic_run_writes_checkpoints() -> SimResult<()> {
        let cfg = dltrain::TrainConfig::tiny_dp(2);
        let out = run_periodic_job(
            cfg,
            CostModel::v100(),
            FailureInjector::none(),
            scheduler(),
            Arc::new(SharedStore::new()),
            PeriodicConfig::every(PolicyKind::PcDisk, 3),
            9,
        )?;
        assert_eq!(out.restarts, 0);
        assert_eq!(out.wasted_iterations, 0);
        // 2 ranks × 3 checkpoints (it 3, 6, 9).
        assert_eq!(out.checkpoints_written, 6);
        assert!(out.losses[0].iter().all(|l| l.is_finite()));
        Ok(())
    }

    #[test]
    fn periodic_restart_replays_lost_iterations() -> SimResult<()> {
        // Failure at iteration 7 with checkpoints every 3 → resume from 6,
        // wasting ~1-2 iterations of work (vs JIT's sub-minibatch cost).
        let cfg = dltrain::TrainConfig::tiny_dp(2);
        let injector = FailureInjector::with_specs(vec![FailureSpec::new(
            7,
            Phase::Backward,
            RankId(1),
            FailureKind::StickyCuda,
        )]);
        let out = run_periodic_job(
            cfg.clone(),
            CostModel::v100(),
            injector,
            scheduler(),
            Arc::new(SharedStore::new()),
            PeriodicConfig::every(PolicyKind::PcMem, 3),
            10,
        )?;
        assert_eq!(out.restarts, 1);
        assert!(out.wasted_iterations >= 1, "{}", out.wasted_iterations);
        // Semantics preserved: the resumed trajectory is complete & finite.
        assert!(out.losses[0].iter().all(|l| l.is_finite()));
        // And equals a failure-free run bit-for-bit.
        let clean = run_periodic_job(
            cfg,
            CostModel::v100(),
            FailureInjector::none(),
            scheduler(),
            Arc::new(SharedStore::new()),
            PeriodicConfig::every(PolicyKind::PcMem, 3),
            10,
        )?;
        assert_eq!(out.losses, clean.losses);
        Ok(())
    }

    #[test]
    fn failure_before_first_checkpoint_restarts_from_scratch() -> SimResult<()> {
        let cfg = dltrain::TrainConfig::tiny_dp(2);
        let injector = FailureInjector::with_specs(vec![FailureSpec::new(
            1,
            Phase::Forward,
            RankId(0),
            FailureKind::GpuHardware,
        )]);
        let out = run_periodic_job(
            cfg,
            CostModel::v100(),
            injector,
            scheduler(),
            Arc::new(SharedStore::new()),
            PeriodicConfig::every(PolicyKind::PcDisk, 5),
            6,
        )?;
        assert_eq!(out.restarts, 1);
        assert!(out.losses[0].iter().all(|l| l.is_finite()));
        Ok(())
    }
}

/// CheckFreq-style frequency auto-tuning: converts the analytically
/// optimal checkpoint frequency (eq. 3) into a whole number of iterations
/// given the measured minibatch time — the paper's baseline tunes its
/// frequency at run time from profiled values.
pub fn tuned_interval_iters(
    kind: PolicyKind,
    state_bytes: u64,
    cost: &CostModel,
    ranks_per_node: usize,
    n_gpus: usize,
    failures_per_gpu_day: f64,
    minibatch_secs: f64,
) -> u64 {
    let o = blocking_overhead(kind, state_bytes, cost, ranks_per_node).as_secs();
    let p = jitckpt::analysis::JobParams::new(o, failures_per_gpu_day, 0.0, n_gpus, minibatch_secs);
    let c = jitckpt::analysis::optimal_frequency(&p); // per second
    let interval_secs = 1.0 / c.max(1e-12);
    (interval_secs / minibatch_secs.max(1e-9)).round().max(1.0) as u64
}

#[cfg(test)]
mod tuning_tests {
    use super::*;

    #[test]
    fn tuned_interval_matches_paper_scale() {
        // BERT-L-PT-ish: ~4.7 GB/rank, 0.418 s minibatch, N = 1024,
        // f = 2/day/992 → paper says ~11 minutes between checkpoints,
        // i.e. a few thousand minibatches.
        let cost = CostModel::v100();
        let iters = tuned_interval_iters(
            PolicyKind::PcDisk,
            (4.7e9) as u64,
            &cost,
            8,
            1024,
            2.0 / 992.0,
            0.418,
        );
        assert!((500..10_000).contains(&iters), "{iters}");
    }

    #[test]
    fn tuned_interval_shrinks_with_more_gpus() {
        let cost = CostModel::v100();
        let args = |n| tuned_interval_iters(PolicyKind::PcMem, 4 << 30, &cost, 8, n, 2e-3, 0.4);
        assert!(args(8192) < args(64), "more GPUs → checkpoint more often");
    }

    #[test]
    fn cheaper_mechanisms_tune_to_higher_frequency() {
        let cost = CostModel::v100();
        let disk = tuned_interval_iters(PolicyKind::PcDisk, 8 << 30, &cost, 8, 1024, 2e-3, 0.5);
        let cf = tuned_interval_iters(PolicyKind::CheckFreq, 8 << 30, &cost, 8, 1024, 2e-3, 0.5);
        assert!(
            cf < disk,
            "CheckFreq's lower stall affords more checkpoints"
        );
    }
}

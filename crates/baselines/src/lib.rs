//! Periodic checkpointing baselines (§6.3 of the paper).
//!
//! Four mechanisms, in increasing sophistication:
//!
//! * **PC_disk** — `torch.save()` to persistent disk in the critical
//!   path: the job stalls for serialization + GPU→host copy + disk write.
//! * **PC_mem** — Nebula-style: write to a tmpfs mount (host memory) in
//!   the critical path, drain to persistent storage asynchronously; the
//!   stall excludes the persistent-store leg.
//! * **CheckFreq** — pipelined snapshotting: the GPU→host copy overlaps
//!   the next iteration's forward pass, so only the un-overlappable
//!   fraction stalls the job.
//! * **PC_1/day** — low-frequency periodic checkpointing meant to run
//!   *alongside* JIT checkpointing for catastrophic multi-node failures.
//!
//! All four share the JIT checkpoint file format
//! ([`jitckpt::checkpoint`]), which is what makes the combined JIT + PC
//! mode work: recovery simply takes the newest complete checkpoint of
//! either kind.
//!
//! [`run_periodic_job`] is the classic restart-recovery launcher: on
//! failure the monitoring plane kills the job, and every rank restarts
//! from the last periodic checkpoint, re-executing (wasting) all
//! iterations since — the cost JIT checkpointing eliminates.

pub mod periodic;

pub use periodic::{
    blocking_overhead, run_periodic_job, PeriodicConfig, PeriodicOutcome, PolicyKind,
};

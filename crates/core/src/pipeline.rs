//! Write-behind checkpoint persistence.
//!
//! [`write_checkpoint_with`](crate::checkpoint::write_checkpoint_with)
//! charges every shard put to the caller: the training thread (or its
//! watchdog) blocks until the slowest shard lands. That is fine against
//! the in-process store, but against a real object store — tens of
//! milliseconds per put — persistence time leaks straight into the
//! training-stall budget the paper works so hard to keep at "one
//! minibatch".
//!
//! [`WriteBehind`] decouples the two halves of a checkpoint write:
//!
//! * the **CPU half** (encode the logical stream, CRC each shard, decide
//!   delta reuse) runs on the submitting thread via
//!   [`ShardPlan`](crate::checkpoint::ShardPlan) — shard `i + 1` is being
//!   CRCed while shard `i` is already uploading, the double-buffer
//!   overlap;
//! * the **I/O half** (shard puts, then the metadata sidecar) runs on a
//!   pool of uploader threads fed by a byte-bounded queue. Payloads are
//!   `Arc`-backed slices of the staged stream, so handoff is a refcount
//!   bump, never a copy.
//!
//! Completion ordering is preserved: the sidecar — the checkpoint's
//! completion marker — is only put after every shard put of that
//! submission has finished, by whichever uploader finishes last (or by a
//! dedicated finalize task when every shard was a delta hit and nothing
//! needed uploading). A failed shard put suppresses the sidecar, so a
//! half-persisted checkpoint is exactly as invisible to readers as a
//! torn blocking write.
//!
//! Backpressure is two-level:
//!
//! * the **queue budget** bounds bytes parked between submitters and
//!   uploaders — a saturated backend eventually blocks `submit`, it
//!   never grows memory without bound;
//! * a per-job [`JobGate`] bounds one job's in-flight bytes, so a job
//!   writing to a slow backend stalls *itself* at admission while other
//!   jobs keep streaming through the remaining uploader capacity.
//!
//! Locking follows the repo's condvar conventions: waits loop on their
//! predicate, notifies happen while holding the paired mutex, and no
//! store call is ever made with a queue, gate, or ticket lock held.

use crate::checkpoint::ShardPlan;
use bytes::Bytes;
use cluster::StorageBackend;
use simcore::codec::encode_framed;
use simcore::sync::{Condvar, Mutex};
use simcore::{SimError, SimResult};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning for a [`WriteBehind`] pipeline.
#[derive(Debug, Clone)]
pub struct WriteBehindConfig {
    /// Uploader threads draining the queue.
    pub workers: usize,
    /// Bound on bytes parked in the queue awaiting upload. A submission
    /// larger than the whole budget is still admitted (one item at a
    /// time) so oversized shards cannot deadlock.
    pub queue_budget_bytes: usize,
}

impl Default for WriteBehindConfig {
    fn default() -> Self {
        WriteBehindConfig {
            workers: 4,
            queue_budget_bytes: 64 << 20,
        }
    }
}

/// Per-job admission control: bounds one job's in-flight (queued +
/// uploading) checkpoint bytes. Acquired by `submit` before a shard is
/// enqueued, released by the uploader when its put finishes — so a job
/// whose backend is slow backs up against its *own* gate.
pub struct JobGate {
    budget_bytes: usize,
    in_flight: Mutex<usize>,
    freed: Condvar,
}

impl JobGate {
    /// Creates a gate admitting up to `budget_bytes` in-flight bytes.
    pub fn new(budget_bytes: usize) -> Arc<JobGate> {
        Arc::new(JobGate {
            budget_bytes: budget_bytes.max(1),
            in_flight: Mutex::new(0),
            freed: Condvar::new(),
        })
    }

    /// Blocks until `n` more in-flight bytes fit. A request larger than
    /// the whole budget is admitted once the gate is idle — progress is
    /// guaranteed for any shard size.
    fn acquire(&self, n: usize) {
        let mut held = self.in_flight.lock();
        while *held > 0 && *held + n > self.budget_bytes {
            self.freed.wait(&mut held);
        }
        *held += n;
    }

    fn release(&self, n: usize) {
        let mut held = self.in_flight.lock();
        *held = held.saturating_sub(n);
        self.freed.notify_all();
    }

    /// Bytes currently admitted and not yet persisted.
    pub fn in_flight(&self) -> usize {
        *self.in_flight.lock()
    }
}

/// Shared completion state of one submitted checkpoint.
#[derive(Debug)]
struct TicketState {
    /// Shard puts enqueued but not yet finished.
    pending_puts: usize,
    /// True once `submit` has staged every shard and armed `finalize`.
    staging_done: bool,
    /// The sidecar put, armed by `submit`, consumed exactly once by
    /// whoever observes `pending_puts == 0 && staging_done`.
    finalize: Option<(String, Bytes)>,
    /// First error observed; suppresses the sidecar put.
    err: Option<SimError>,
    /// Terminal: sidecar persisted, or failed.
    done: bool,
}

struct TicketShared {
    state: Mutex<TicketState>,
    completed: Condvar,
    /// The backend this submission persists to — carried per ticket so
    /// one uploader pool can serve jobs with different backends.
    store: Arc<dyn StorageBackend>,
}

/// Handle to an in-flight write-behind checkpoint. Dropping the ticket
/// does not cancel the write — the checkpoint still completes (or
/// fails) in the background; `wait` is how durability is observed.
#[derive(Clone)]
pub struct CkptTicket {
    shared: Arc<TicketShared>,
    iteration: u64,
}

impl CkptTicket {
    /// Blocks until the checkpoint is durable (sidecar persisted) or
    /// failed, returning the first error encountered.
    pub fn wait(&self) -> SimResult<()> {
        let mut st = self.shared.state.lock();
        while !st.done {
            self.shared.completed.wait(&mut st);
        }
        match &st.err {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Non-blocking completion probe.
    pub fn is_done(&self) -> bool {
        self.shared.state.lock().done
    }

    /// Iteration this ticket persists.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }
}

/// One unit of uploader work.
enum Task {
    /// Persist a shard payload, then account it against its ticket.
    Put {
        path: String,
        data: Bytes,
        ticket: Arc<TicketShared>,
        gate: Option<Arc<JobGate>>,
    },
    /// A submission with zero uploads (every shard was a delta hit):
    /// nothing will trip the last-put finalize, so finalize explicitly.
    Finalize { ticket: Arc<TicketShared> },
}

impl Task {
    fn cost(&self) -> usize {
        match self {
            Task::Put { data, .. } => data.len(),
            Task::Finalize { .. } => 0,
        }
    }
}

#[derive(Debug)]
struct QueueState {
    tasks: VecDeque<Task>,
    queued_bytes: usize,
    shutdown: bool,
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Task::Put { path, data, .. } => {
                write!(f, "Put({path}, {} bytes)", data.len())
            }
            Task::Finalize { .. } => write!(f, "Finalize"),
        }
    }
}

struct Queue {
    state: Mutex<QueueState>,
    /// Signalled when a task arrives or shutdown begins.
    not_empty: Condvar,
    /// Signalled when queued bytes drop.
    not_full: Condvar,
    budget_bytes: usize,
}

/// Counters exposed for benches and tests.
#[derive(Debug, Default)]
pub struct WriteBehindStats {
    /// Shard puts completed (success or failure).
    pub puts: AtomicU64,
    /// Payload bytes handed to the backend.
    pub uploaded_bytes: AtomicU64,
    /// Checkpoints fully persisted (sidecar landed).
    pub completed: AtomicU64,
    /// Checkpoints that failed (sidecar suppressed).
    pub failed: AtomicU64,
}

/// The write-behind pipeline: a byte-bounded task queue drained by
/// uploader threads, fronting any [`StorageBackend`].
pub struct WriteBehind {
    store: Arc<dyn StorageBackend>,
    queue: Arc<Queue>,
    stats: Arc<WriteBehindStats>,
    uploaders: Vec<std::thread::JoinHandle<()>>,
}

impl WriteBehind {
    /// Spawns the uploader pool over `store`.
    pub fn new(store: Arc<dyn StorageBackend>, cfg: WriteBehindConfig) -> WriteBehind {
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                queued_bytes: 0,
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            budget_bytes: cfg.queue_budget_bytes.max(1),
        });
        let stats = Arc::new(WriteBehindStats::default());
        let uploaders = (0..cfg.workers.max(1))
            .map(|i| {
                let queue = queue.clone();
                let stats = stats.clone();
                std::thread::Builder::new()
                    .name(format!("wb-upload-{i}"))
                    .spawn(move || uploader_loop(&queue, &stats))
                    .expect("spawn write-behind uploader")
            })
            .collect();
        WriteBehind {
            store,
            queue,
            stats,
            uploaders,
        }
    }

    /// Submits a staged checkpoint against this pipeline's own backend.
    pub fn submit(&self, plan: &ShardPlan, gate: Option<&Arc<JobGate>>) -> CkptTicket {
        let store = self.store.clone();
        self.submit_to(&store, plan, gate)
    }

    /// Submits a staged checkpoint to an explicit backend (multi-job
    /// coordinators route different jobs through one uploader pool).
    /// The CPU half (per-shard CRC + delta decision) runs here on the
    /// calling thread, interleaved with enqueueing — by the time shard
    /// `i + 1` is CRCed, shard `i` is already uploading. Blocks only on
    /// admission (the job gate, then the queue budget); never on the
    /// backend itself.
    pub fn submit_to(
        &self,
        store: &Arc<dyn StorageBackend>,
        plan: &ShardPlan,
        gate: Option<&Arc<JobGate>>,
    ) -> CkptTicket {
        let shared = Arc::new(TicketShared {
            store: store.clone(),
            state: Mutex::new(TicketState {
                pending_puts: 0,
                staging_done: false,
                finalize: None,
                err: None,
                done: false,
            }),
            completed: Condvar::new(),
        });

        let n = plan.n_shards();
        let mut shard_metas = Vec::with_capacity(n);
        for i in 0..n {
            let (meta, upload) = plan.resolve_shard(i);
            shard_metas.push(meta);
            let Some(payload) = upload else { continue };
            if let Some(g) = gate {
                g.acquire(payload.len());
            }
            {
                let mut st = shared.state.lock();
                st.pending_puts += 1;
            }
            self.enqueue(Task::Put {
                path: plan.shard_path(i),
                data: payload,
                ticket: shared.clone(),
                gate: gate.cloned(),
            });
        }

        let meta = plan.finish_meta(shard_metas);
        let sidecar = (plan.meta_path(), encode_framed(&meta));
        let needs_explicit_finalize = {
            let mut st = shared.state.lock();
            st.finalize = Some(sidecar);
            st.staging_done = true;
            st.pending_puts == 0
        };
        if needs_explicit_finalize {
            self.enqueue(Task::Finalize {
                ticket: shared.clone(),
            });
        }
        CkptTicket {
            shared,
            iteration: plan.iteration,
        }
    }

    /// Blocks until `task` fits under the queue budget, then parks it.
    fn enqueue(&self, task: Task) {
        let cost = task.cost();
        let mut st = self.queue.state.lock();
        while !st.tasks.is_empty() && st.queued_bytes + cost > self.queue.budget_bytes {
            self.queue.not_full.wait(&mut st);
        }
        st.queued_bytes += cost;
        st.tasks.push_back(task);
        self.queue.not_empty.notify_one();
    }

    /// Pipeline counters.
    pub fn stats(&self) -> &WriteBehindStats {
        &self.stats
    }

    /// The backend this pipeline persists to.
    pub fn store(&self) -> &Arc<dyn StorageBackend> {
        &self.store
    }

    /// Drains every queued task and joins the uploaders. Called by
    /// `Drop`; explicit calls make shutdown errors visible in tests.
    pub fn shutdown(&mut self) {
        {
            let mut st = self.queue.state.lock();
            if st.shutdown {
                return;
            }
            st.shutdown = true;
            self.queue.not_empty.notify_all();
        }
        for h in self.uploaders.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WriteBehind {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Uploader body: pop, persist outside any lock, account to the ticket,
/// finalize when this was the submission's last outstanding put.
fn uploader_loop(queue: &Queue, stats: &WriteBehindStats) {
    loop {
        let task = {
            let mut st = queue.state.lock();
            while st.tasks.is_empty() && !st.shutdown {
                queue.not_empty.wait(&mut st);
            }
            match st.tasks.pop_front() {
                Some(t) => {
                    st.queued_bytes -= t.cost();
                    queue.not_full.notify_all();
                    t
                }
                // Queue empty and shutdown requested: drained.
                None => return,
            }
        };

        match task {
            Task::Put {
                path,
                data,
                ticket,
                gate,
            } => {
                let len = data.len();
                let res = ticket.store.put(&path, data);
                stats.puts.fetch_add(1, Ordering::Relaxed);
                stats
                    .uploaded_bytes
                    .fetch_add(len as u64, Ordering::Relaxed);
                if let Some(g) = gate {
                    g.release(len);
                }
                let fin = {
                    let mut st = ticket.state.lock();
                    st.pending_puts -= 1;
                    if let Err(e) = res {
                        if st.err.is_none() {
                            st.err = Some(e);
                        }
                    }
                    if st.pending_puts == 0 && st.staging_done {
                        st.finalize.take().map(|f| (f, st.err.is_some()))
                    } else {
                        None
                    }
                };
                if let Some((sidecar, had_err)) = fin {
                    finalize(stats, &ticket, sidecar, had_err);
                }
            }
            Task::Finalize { ticket } => {
                let fin = {
                    let mut st = ticket.state.lock();
                    if st.pending_puts == 0 && st.staging_done {
                        st.finalize.take().map(|f| (f, st.err.is_some()))
                    } else {
                        None
                    }
                };
                if let Some((sidecar, had_err)) = fin {
                    finalize(stats, &ticket, sidecar, had_err);
                }
            }
        }
    }
}

/// Persists the completion sidecar (unless a shard put already failed —
/// then the checkpoint must stay invisible) and marks the ticket done.
fn finalize(
    stats: &WriteBehindStats,
    ticket: &TicketShared,
    sidecar: (String, Bytes),
    had_err: bool,
) {
    let res = if had_err {
        Ok(()) // keep the first shard error; never write the marker
    } else {
        ticket.store.put(&sidecar.0, sidecar.1)
    };
    let mut st = ticket.state.lock();
    if let Err(e) = res {
        if st.err.is_none() {
            st.err = Some(e);
        }
    }
    if st.err.is_some() {
        stats.failed.fetch_add(1, Ordering::Relaxed);
    } else {
        stats.completed.fetch_add(1, Ordering::Relaxed);
    }
    st.done = true;
    ticket.completed.notify_all();
}

//! The paper's failure-overhead analytical model (§5).
//!
//! Implements, symbol for symbol:
//!
//! * eq. 1 — expected wasted GPU time for periodic checkpointing at
//!   frequency `c`;
//! * eq. 3 — the optimal checkpointing frequency `c* = √(N·f / 2o)`;
//! * eq. 4/5 — wasted work at the optimum and the per-GPU wasted rate;
//! * eq. 6 — the wasted time *fraction* `w_f = w / (1 + w)`;
//! * eq. 7 — wasted work for user-level JIT checkpointing;
//! * eq. 8 — wasted work for transparent JIT checkpointing;
//! * the §5.1 dollar-cost estimate and the §6.5 scaling curves (eq. 9–10).
//!
//! All rates are per second; all durations in seconds, matching
//! [`simcore::SimTime`] conventions.

/// Inputs to the wasted-work model for one job configuration.
#[derive(Debug, Clone, Copy)]
pub struct JobParams {
    /// `o`: overhead time of one checkpoint on one GPU (seconds).
    pub ckpt_overhead: f64,
    /// `f`: per-GPU failure frequency (failures per second).
    pub failure_rate: f64,
    /// `r`: fixed recovery cost per GPU per failure (seconds) —
    /// checkpoint download, process/GPU init, data preparation.
    pub fixed_recovery: f64,
    /// `N`: number of GPUs.
    pub n_gpus: usize,
    /// `m`: minibatch duration (seconds).
    pub minibatch: f64,
}

impl JobParams {
    /// Convenience constructor with `f` in failures/GPU/day.
    pub fn new(
        ckpt_overhead: f64,
        failures_per_gpu_day: f64,
        fixed_recovery: f64,
        n_gpus: usize,
        minibatch: f64,
    ) -> Self {
        JobParams {
            ckpt_overhead,
            failure_rate: failures_per_gpu_day / 86_400.0,
            fixed_recovery,
            n_gpus,
            minibatch,
        }
    }
}

/// Eq. 3: optimal periodic checkpointing frequency `c* = √(N·f / 2o)`
/// (checkpoints per second).
pub fn optimal_frequency(p: &JobParams) -> f64 {
    (p.n_gpus as f64 * p.failure_rate / (2.0 * p.ckpt_overhead)).sqrt()
}

/// Eq. 1 (normalized by `N·t`): expected wasted GPU time per GPU per unit
/// useful time for periodic checkpointing at frequency `c`:
/// `w = c·o + N·f·r + N·f/(2c)`.
pub fn wasted_rate_periodic(p: &JobParams, c: f64) -> f64 {
    let nf = p.n_gpus as f64 * p.failure_rate;
    c * p.ckpt_overhead + nf * p.fixed_recovery + nf / (2.0 * c)
}

/// Eq. 5: wasted rate at the optimal frequency,
/// `w* = 2·√(N·f·o/2) + N·f·r`.
pub fn wasted_rate_periodic_optimal(p: &JobParams) -> f64 {
    let nf = p.n_gpus as f64 * p.failure_rate;
    2.0 * (nf * p.ckpt_overhead / 2.0).sqrt() + nf * p.fixed_recovery
}

/// Eq. 6: wasted time fraction `w_f = w / (1 + w)`.
pub fn wasted_fraction(w: f64) -> f64 {
    w / (1.0 + w)
}

/// Eq. 7 (normalized): wasted rate for **user-level** JIT checkpointing:
/// `w = f·o + o_jit + N·f·r + N·f·m/2`, with one checkpoint per failure
/// instead of periodic checkpoints.
pub fn wasted_rate_jit_user(p: &JobParams, steady_overhead: f64) -> f64 {
    let nf = p.n_gpus as f64 * p.failure_rate;
    p.failure_rate * p.ckpt_overhead
        + steady_overhead
        + nf * p.fixed_recovery
        + nf * p.minibatch / 2.0
}

/// Eq. 8 (normalized): wasted rate for **transparent** JIT checkpointing
/// on transient errors: `w = o_jit + N·f·m/2` — no checkpoint copy and no
/// fixed re-initialization cost (CRIU preserves worker CPU state).
pub fn wasted_rate_jit_transparent(p: &JobParams, steady_overhead: f64) -> f64 {
    let nf = p.n_gpus as f64 * p.failure_rate;
    steady_overhead + nf * p.minibatch / 2.0
}

/// Extension of the §5 model to **in-network gradient replication**
/// (Checkmate-style, PAPERS.md): the failed rank's state is rebuilt from
/// shard slices already resident on ring peers, so a failure costs no
/// checkpoint write, no store read, and no fixed re-initialization tax
/// beyond the reconstruction tail itself:
/// `w = o_tap + N·f·(t_rec + m/2)`, where `o_tap` is the steady-state
/// tap overhead (an `Arc` bump per generation — measured ≈ 0) and
/// `t_rec` the slice-stream + optimizer-replay time per failure.
pub fn wasted_rate_in_network(p: &JobParams, steady_overhead: f64, reconstruct: f64) -> f64 {
    let nf = p.n_gpus as f64 * p.failure_rate;
    steady_overhead + nf * (reconstruct + p.minibatch / 2.0)
}

/// §5.1 dollar-cost estimate: monthly cost of wasted GPU time due to
/// failures, given the per-failure wasted time per GPU.
///
/// The paper's example: 1000 GPUs, 1 failure/day, 0.25 h wasted per GPU
/// per failure, $4/GPU/hour → $30,000/month.
pub fn monthly_failure_cost_dollars(
    n_gpus: usize,
    failures_per_day: f64,
    wasted_hours_per_gpu_per_failure: f64,
    dollars_per_gpu_hour: f64,
) -> f64 {
    n_gpus as f64
        * failures_per_day
        * 30.0
        * wasted_hours_per_gpu_per_failure
        * dollars_per_gpu_hour
}

/// One point of the §6.5 scaling analysis.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// GPU count.
    pub n: usize,
    /// Optimal periodic frequency (per hour).
    pub c_star_per_hour: f64,
    /// Wasted fraction for periodic checkpointing at `c*`.
    pub wf_periodic: f64,
    /// Wasted fraction for user-level JIT.
    pub wf_jit_user: f64,
    /// Wasted fraction for transparent JIT (transient errors).
    pub wf_jit_transparent: f64,
}

/// Sweeps the wasted-fraction model over GPU counts (the §6.5 "figure").
///
/// `user_steady` / `transparent_steady` are the measured per-unit-time
/// steady-state overheads of the two JIT designs.
pub fn scaling_curve(
    base: &JobParams,
    ns: &[usize],
    user_steady: f64,
    transparent_steady: f64,
) -> Vec<ScalingPoint> {
    ns.iter()
        .map(|&n| {
            let p = JobParams { n_gpus: n, ..*base };
            ScalingPoint {
                n,
                c_star_per_hour: optimal_frequency(&p) * 3600.0,
                wf_periodic: wasted_fraction(wasted_rate_periodic_optimal(&p)),
                wf_jit_user: wasted_fraction(wasted_rate_jit_user(&p, user_steady)),
                wf_jit_transparent: wasted_fraction(wasted_rate_jit_transparent(
                    &p,
                    transparent_steady,
                )),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// BERT-L-PT parameters from §6.5: o = 5 s, r = 9.9 s,
    /// f = 2e-3 /GPU/day.
    fn bert_l() -> JobParams {
        JobParams::new(5.0, 2.0 / 992.0, 9.9, 4, 0.418)
    }

    #[test]
    fn eq9_bert_l_optimal_frequency_is_sqrt_n_over_6h() {
        // Paper: c* ≈ √N / 6hr. At N = 4: once every 3 hours.
        let p = bert_l();
        let c = optimal_frequency(&p); // per second
        let per_6h = c * 6.0 * 3600.0;
        assert!((per_6h - 2.0).abs() < 0.15, "√4 = 2 per 6h, got {per_6h}");
        // At N = 1024: ≈ 5.54/hour (paper's number).
        let p = JobParams { n_gpus: 1024, ..p };
        let per_hour = optimal_frequency(&p) * 3600.0;
        assert!((per_hour - 5.54).abs() < 0.3, "got {per_hour}");
    }

    #[test]
    fn optimal_frequency_minimizes_eq1() {
        // Numeric scan: no frequency beats c*.
        let p = JobParams::new(5.0, 2e-3, 9.9, 1024, 0.4);
        let c_star = optimal_frequency(&p);
        let w_star = wasted_rate_periodic(&p, c_star);
        for k in 1..200 {
            let c = c_star * (0.1 + k as f64 * 0.02);
            assert!(
                wasted_rate_periodic(&p, c) >= w_star - 1e-15,
                "c = {c} beats c* = {c_star}"
            );
        }
        // And the closed form matches the plugged-in form.
        assert!((w_star - wasted_rate_periodic_optimal(&p)).abs() < 1e-12);
    }

    #[test]
    fn eq10_bert_l_wasted_fraction_values() {
        // Paper: w_f ≈ 0.1% at N = 4 and ≈ 1.53% at N = 1024.
        let p = bert_l();
        let wf4 = wasted_fraction(wasted_rate_periodic_optimal(&p));
        assert!((0.0005..0.002).contains(&wf4), "N=4: {wf4}");
        let p1024 = JobParams { n_gpus: 1024, ..p };
        let wf1024 = wasted_fraction(wasted_rate_periodic_optimal(&p1024));
        assert!((0.012..0.019).contains(&wf1024), "N=1024: {wf1024}");
    }

    #[test]
    fn jit_beats_periodic_at_scale() {
        // Table 8's headline: JIT wasted time grows much slower with N.
        let p = bert_l();
        for n in [1024usize, 8192] {
            let p = JobParams { n_gpus: n, ..p };
            let periodic = wasted_fraction(wasted_rate_periodic_optimal(&p));
            let user = wasted_fraction(wasted_rate_jit_user(&p, 0.0075));
            let transparent = wasted_fraction(wasted_rate_jit_transparent(&p, 0.0069));
            assert!(user < periodic, "N={n}: user {user} vs periodic {periodic}");
            assert!(
                transparent < periodic,
                "N={n}: transparent {transparent} vs periodic {periodic}"
            );
        }
    }

    #[test]
    fn transparent_wasted_time_is_flat_in_n() {
        // Eq. 8 with tiny m: the N·f·m/2 term stays negligible, so w_f is
        // dominated by the steady overhead and barely moves (Table 8's
        // flat 0.69% row).
        let p = JobParams::new(2.0, 2.0 / 992.0, 2.1, 4, 0.279);
        let w4 = wasted_fraction(wasted_rate_jit_transparent(&p, 0.0069));
        let p8192 = JobParams { n_gpus: 8192, ..p };
        let w8192 = wasted_fraction(wasted_rate_jit_transparent(&p8192, 0.0069));
        assert!((w8192 - w4) / w4 < 0.1, "flat: {w4} → {w8192}");
    }

    #[test]
    fn in_network_interpolates_between_transparent_and_jit_user() {
        // With the same steady overhead, in-network at t_rec = 0 equals
        // transparent JIT (both lose only the half-minibatch), and it
        // stays below user-level JIT as long as the reconstruction tail
        // undercuts the checkpoint-write + fixed-restart tax.
        let p = bert_l();
        for n in [64usize, 1024, 8192] {
            let p = JobParams { n_gpus: n, ..p };
            let zero_tail = wasted_rate_in_network(&p, 0.0069, 0.0);
            let transparent = wasted_rate_jit_transparent(&p, 0.0069);
            assert!((zero_tail - transparent).abs() < 1e-15);
            let with_tail = wasted_rate_in_network(&p, 0.0069, 1.5);
            let user = wasted_rate_jit_user(&p, 0.0069);
            assert!(with_tail > zero_tail);
            assert!(
                with_tail < user,
                "N={n}: in-network {with_tail} vs user {user}"
            );
        }
    }

    #[test]
    fn dollar_cost_matches_paper_examples() {
        // §5.1: 1000 GPUs, 1 failure/day, 15 min wasted, $4/h → $30k/month.
        let c = monthly_failure_cost_dollars(1000, 1.0, 0.25, 4.0);
        assert!((c - 30_000.0).abs() < 1.0);
        // 10,000 GPUs with 10 failures/day (O(N) failure rate) → $3M.
        let c = monthly_failure_cost_dollars(10_000, 10.0, 0.25, 4.0);
        assert!((c - 3_000_000.0).abs() < 1.0);
    }

    #[test]
    fn scaling_curve_is_monotone_for_periodic() {
        let p = bert_l();
        let pts = scaling_curve(&p, &[4, 64, 1024, 8192], 0.0075, 0.0069);
        for w in pts.windows(2) {
            assert!(w[1].wf_periodic > w[0].wf_periodic);
            assert!(w[1].c_star_per_hour > w[0].c_star_per_hour);
        }
        // JIT advantage appears by 1024 GPUs.
        let p1024 = &pts[2];
        assert!(p1024.wf_jit_user < p1024.wf_periodic);
    }

    #[test]
    fn wasted_fraction_bounds() {
        assert_eq!(wasted_fraction(0.0), 0.0);
        assert!((wasted_fraction(1.0) - 0.5).abs() < 1e-12);
        assert!(wasted_fraction(1e6) < 1.0);
    }
}

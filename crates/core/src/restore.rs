//! The parallel restore plane — the read-side counterpart of the
//! sharded write pool and the write-behind pipeline.
//!
//! The paper's §5 wasted-work model is dominated by *recovery* latency,
//! yet the serial reader ([`checkpoint::read_checkpoint`]) issues one
//! blocking `store.get` per shard and CRC-verifies inline: a 16-shard
//! restore over a millisecond-latency object store pays 16 round-trips
//! back to back. This module restores the same checkpoints through a
//! bounded **fetch pool** feeding an in-order **fan-in verifier**:
//!
//! * **Concurrent fetch** — dedicated fetcher threads claim shard
//!   indices from an atomic cursor and issue `get`s in parallel. The
//!   pool is auto-sized like the write side
//!   ([`checkpoint::default_shard_workers`]) and additionally capped by
//!   the backend's [`StorageBackend::read_parallelism`] hint, so a
//!   transfer-slot-limited [`SimObjectStore`] is never oversubscribed
//!   (extra fetchers would just park on the slot condvar).
//! * **Overlapped verify/decode** — the calling thread consumes shard
//!   slots strictly in index order, CRC-verifying and appending shard
//!   `k` while fetchers pull `k+1..`. Assembly order — and therefore the
//!   reassembled byte stream — is bit-identical to the serial reader's.
//! * **Delta-chain prefetch** — `base_iteration` references are
//!   collapsed transitively at write time, so one sidecar read resolves
//!   *every* shard's physical holder up front; base and delta shards are
//!   fetched in a single wave instead of chain-depth round-trips.
//! * **Multi-source striping** — against a
//!   [`PlacedStore`](../../coordinator/struct.PlacedStore.html) each
//!   shard's `get` routes to its ring-placed node (with the epoch-history
//!   fallback inside the backend), so a restore stripes across the fleet
//!   and keeps working while `add_node`/`remove_node`/`repair()`
//!   rebalance underneath.
//!
//! Failure semantics are the serial reader's, by construction: the
//! per-shard validation and the aggregated blame-every-bad-shard-by-index
//! error are produced by the same helpers both paths share
//! ([`checkpoint::verify_shard`] / [`checkpoint::finish_restore`]).
//!
//! [`SimObjectStore`]: ../../coordinator/struct.SimObjectStore.html

use bytes::{BufMut, BytesMut};
use cluster::StorageBackend;
use dltrain::TrainState;
use simcore::layout::ParallelLayout;
use simcore::sync::{Condvar, Mutex};
use simcore::{JobId, RankId, SimResult};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::checkpoint::{self, CheckpointMeta, CkptKind};

/// Tuning knobs for the parallel restore plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreConfig {
    /// Fetch-pool width ceiling. The effective pool is further capped by
    /// the backend's [`StorageBackend::read_parallelism`] hint and by
    /// the shard count (extra fetchers would exit without work).
    pub fetchers: usize,
}

impl Default for RestoreConfig {
    fn default() -> Self {
        RestoreConfig {
            fetchers: checkpoint::default_shard_workers(),
        }
    }
}

/// What one parallel restore actually did — the coordinator aggregates
/// these into per-job restore-amplification reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// Shards the sidecar listed.
    pub shards: usize,
    /// Fetcher threads the pool ran with.
    pub fetchers: usize,
    /// Shard `get`s issued (sidecar reads excluded).
    pub shard_reads: u64,
    /// Payload bytes fetched and verified.
    pub bytes_fetched: u64,
    /// Distinct physical holder iterations fetched in the single wave:
    /// `1` for a full checkpoint, `1 + bases` down a delta chain.
    pub prefetch_depth: usize,
    /// Backend reads served off an older placement ring during this
    /// restore ([`StorageBackend::fallback_reads`] delta) — nonzero
    /// means the restore raced a rebalance and won.
    pub fallback_hits: u64,
}

/// Index-addressed hand-off between the fetch pool and the in-order
/// verifier. Fetchers deposit each shard's `get` result (the `Bytes`
/// payload is `Arc`-backed — depositing is a refcount move, not a copy);
/// the verifier takes slots in index order, parking on the condvar when
/// it gets ahead of the fetch wave.
struct FanIn {
    slots: Mutex<Vec<Option<SimResult<bytes::Bytes>>>>,
    arrived: Condvar,
}

/// Effective fetch-pool width for `n` shards against `store`.
fn pool_width<S: StorageBackend + ?Sized>(store: &S, n: usize, cfg: &RestoreConfig) -> usize {
    cfg.fetchers
        .min(store.read_parallelism().max(1))
        .min(n.max(1))
        .max(1)
}

/// Reads and fully validates one checkpoint through the parallel plane.
///
/// Equivalent to [`checkpoint::read_checkpoint`] — bit-identical state,
/// metadata, and error text — but shard objects are fetched by a bounded
/// concurrent pool while the calling thread verifies and assembles in
/// index order, and a delta chain's base shards are prefetched in the
/// same wave as the tip's own shards.
#[allow(clippy::too_many_arguments)]
pub fn read_checkpoint_parallel<S: StorageBackend + ?Sized>(
    store: &S,
    job: JobId,
    kind: CkptKind,
    iteration: u64,
    stage: usize,
    part: usize,
    dp: usize,
    cfg: &RestoreConfig,
) -> SimResult<(TrainState, CheckpointMeta, RestoreStats)> {
    let meta = checkpoint::read_meta(store, job, kind, iteration, stage, part, dp)?;
    let prefix = checkpoint::checkpoint_prefix(job, kind, iteration, stage, part, dp);
    checkpoint::precheck_meta(&meta, &prefix)?;
    let n = meta.shards.len();

    // Delta-chain prefetch: references are collapsed at write time, so
    // one pass over the sidecar resolves every shard's physical holder —
    // base and tip shards become one fetch wave. An out-of-order sidecar
    // entry gets no path; it is blamed without being fetched, exactly as
    // in the serial reader.
    let mut wave: BTreeSet<u64> = BTreeSet::new();
    let mut holders: Vec<Option<u64>> = Vec::with_capacity(n);
    let mut paths: Vec<Option<String>> = Vec::with_capacity(n);
    for (i, sm) in meta.shards.iter().enumerate() {
        if sm.index as usize == i {
            let holder = sm.base_iteration.unwrap_or(meta.iteration);
            wave.insert(holder);
            holders.push(Some(holder));
            paths.push(Some(checkpoint::shard_path(
                job, kind, holder, stage, part, dp, sm.index,
            )));
        } else {
            holders.push(None);
            paths.push(None);
        }
    }

    let fetchers = pool_width(store, n, cfg);
    let fallback_before = store.fallback_reads();

    let fan = FanIn {
        slots: Mutex::new((0..n).map(|_| None).collect()),
        arrived: Condvar::new(),
    };
    let cursor = AtomicUsize::new(0);
    // One fetcher's claim-fetch-deposit loop. The store `get` runs with
    // no lock held; the slot lock is taken only to deposit, and the
    // wake-up is issued while the guard is still held (lost-wakeup rule).
    let fetch_loop = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let Some(path) = &paths[i] else {
            continue;
        };
        let res = store.get(path);
        let mut slots = fan.slots.lock();
        slots[i] = Some(res);
        fan.arrived.notify_all();
    };

    let mut bad: Vec<String> = Vec::new();
    let mut stream = BytesMut::with_capacity(meta.payload_len as usize);
    let mut stats = RestoreStats {
        shards: n,
        fetchers,
        ..RestoreStats::default()
    };

    std::thread::scope(|scope| {
        let mut spawned = 0usize;
        for t in 0..fetchers {
            let ok = std::thread::Builder::new()
                .name(format!("restore-fetch-{t}"))
                .spawn_scoped(scope, fetch_loop)
                .is_ok();
            if ok {
                spawned += 1;
            }
        }
        if spawned == 0 {
            // Thread spawn refused (resource exhaustion): drain the
            // cursor inline — fully serial, still correct — rather than
            // deadlock waiting on slots nobody will fill.
            fetch_loop();
        }

        // In-order fan-in: verify + append shard `i` while the pool is
        // still fetching `i+1..`. Index order makes the reassembled
        // stream bit-identical to the serial reader's.
        for (i, sm) in meta.shards.iter().enumerate() {
            let Some(holder) = holders[i] else {
                bad.push(format!("shard {i}: sidecar index out of order"));
                continue;
            };
            let fetched = {
                let mut slots = fan.slots.lock();
                loop {
                    if let Some(res) = slots[i].take() {
                        break res;
                    }
                    fan.arrived.wait(&mut slots);
                }
            };
            stats.shard_reads += 1;
            match checkpoint::verify_shard(i, sm, holder, fetched) {
                Ok(obj) => {
                    stats.bytes_fetched += obj.len() as u64;
                    stream.put_slice(&obj);
                }
                Err(blame) => bad.push(blame),
            }
        }
    });

    stats.prefetch_depth = wave.len();
    stats.fallback_hits = store.fallback_reads().saturating_sub(fallback_before);
    checkpoint::finish_restore(&prefix, meta, stream, bad).map(|(state, meta)| (state, meta, stats))
}

/// Loads the resolved checkpoint for `rank` through the parallel plane:
/// [`checkpoint::assemble`]'s choice for the rank's cell, fetched
/// concurrently. The store leg of the recovery fallback chain
/// ([`crate::stream::restore_with_fallback`]) and the streamed-replica
/// owner's store read both route through this.
pub fn load_for_rank_parallel<S: StorageBackend + ?Sized>(
    store: &S,
    job: JobId,
    layout: &ParallelLayout,
    rank: RankId,
    cfg: &RestoreConfig,
) -> SimResult<(TrainState, CheckpointMeta, RestoreStats)> {
    let coord = layout.coord(rank);
    let plan = checkpoint::assemble(store, job, layout)?;
    let choice = plan[&(coord.stage, coord.part)];
    read_checkpoint_parallel(
        store,
        job,
        choice.kind,
        choice.iteration,
        coord.stage,
        coord.part,
        choice.dp,
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{
        read_checkpoint, write_checkpoint_with, ShardConfig, DEFAULT_MAX_DELTA_CHAIN,
    };
    use cluster::SharedStore;
    use simgpu::BufferTag;

    fn big_state(it: u64, v: f32) -> TrainState {
        TrainState {
            iteration: it,
            opt_t: it as u32,
            buffers: vec![
                ("w".into(), BufferTag::Param, vec![v; 64]),
                ("m".into(), BufferTag::OptimState, vec![v * 2.0; 64]),
            ],
            logical_bytes: 512,
        }
    }

    const SMALL: ShardConfig = ShardConfig {
        shard_bytes: 64,
        workers: 3,
        delta: true,
        max_delta_chain: DEFAULT_MAX_DELTA_CHAIN,
    };

    #[test]
    fn parallel_round_trip_matches_serial() -> SimResult<()> {
        let store = SharedStore::new();
        let s = big_state(9, 0.5);
        write_checkpoint_with(
            &store,
            JobId(0),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &s,
            &SMALL,
        )?;
        let (serial, sm) = read_checkpoint(&store, JobId(0), CkptKind::Jit, 9, 0, 0, 0)?;
        let (par, pm, stats) = read_checkpoint_parallel(
            &store,
            JobId(0),
            CkptKind::Jit,
            9,
            0,
            0,
            0,
            &RestoreConfig::default(),
        )?;
        assert_eq!(serial, par);
        assert_eq!(sm, pm);
        assert_eq!(stats.shards, sm.shards.len());
        assert_eq!(stats.shard_reads, sm.shards.len() as u64);
        assert_eq!(stats.bytes_fetched, sm.payload_len);
        assert_eq!(stats.prefetch_depth, 1, "full checkpoint: one holder");
        assert_eq!(stats.fallback_hits, 0);
        Ok(())
    }

    #[test]
    fn delta_chain_fetches_in_one_wave() -> SimResult<()> {
        let store = SharedStore::new();
        let mut s = big_state(9, 0.5);
        write_checkpoint_with(
            &store,
            JobId(0),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &s,
            &SMALL,
        )?;
        s.iteration = 10;
        s.buffers[1].2[0] = 123.0;
        write_checkpoint_with(
            &store,
            JobId(0),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &s,
            &SMALL,
        )?;
        let (par, pm, stats) = read_checkpoint_parallel(
            &store,
            JobId(0),
            CkptKind::Jit,
            10,
            0,
            0,
            0,
            &RestoreConfig::default(),
        )?;
        assert_eq!(par, s);
        assert!(pm.shards.iter().any(|m| m.base_iteration == Some(9)));
        assert_eq!(stats.prefetch_depth, 2, "tip + one base iteration");
        Ok(())
    }

    #[test]
    fn pool_width_respects_backend_hint_and_shard_count() {
        let store = SharedStore::new();
        let cfg = RestoreConfig { fetchers: 12 };
        // Capped by shard count.
        assert_eq!(pool_width(&store, 2, &cfg), 2);
        // Capped by the config.
        assert_eq!(pool_width(&store, 64, &cfg), 12);
        // Degenerate inputs still yield a worker.
        assert_eq!(pool_width(&store, 0, &RestoreConfig { fetchers: 0 }), 1);
    }

    #[test]
    fn blame_messages_identical_to_serial_on_corruption() -> SimResult<()> {
        let store = SharedStore::new();
        let s = big_state(9, 0.5);
        write_checkpoint_with(
            &store,
            JobId(0),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &s,
            &SMALL,
        )?;
        store.corrupt(checkpoint::shard_path(
            JobId(0),
            CkptKind::Jit,
            9,
            0,
            0,
            0,
            2,
        ))?;
        store.delete(checkpoint::shard_path(
            JobId(0),
            CkptKind::Jit,
            9,
            0,
            0,
            0,
            5,
        ));
        let serial = read_checkpoint(&store, JobId(0), CkptKind::Jit, 9, 0, 0, 0).unwrap_err();
        let parallel = read_checkpoint_parallel(
            &store,
            JobId(0),
            CkptKind::Jit,
            9,
            0,
            0,
            0,
            &RestoreConfig::default(),
        )
        .unwrap_err();
        assert_eq!(format!("{serial}"), format!("{parallel}"));
        let msg = format!("{parallel}");
        assert!(msg.contains("shard 2: checksum mismatch"), "{msg}");
        assert!(msg.contains("shard 5: missing object"), "{msg}");
        Ok(())
    }
}

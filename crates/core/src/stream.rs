//! Pipelined replica-to-replica recovery state transfer.
//!
//! After a failure, §3.3 has every restarting rank read a data-parallel
//! replica's JIT checkpoint back from shared storage. That is a full
//! store round-trip per rank: the healthy replica's state was written
//! shard by shard, and each peer reads it back through the (shared,
//! slow) storage tier. SWIFT-style replica recovery observes that the
//! bytes already exist one network hop away — so here only the replica
//! that owns the chosen checkpoint touches the store, and it then
//! streams its restored [`TrainState`] directly rank-to-rank as the
//! same CRC-framed codec shards ([`simcore::codec::Encoder`]) the
//! checkpoint writer produces.
//!
//! The transfer is pipelined in virtual time: the sender's clock pays
//! the CPU framing cost per shard and the wire charges p2p transfer on
//! top ([`CommWorld::send_bytes`] stamps each frame's availability),
//! while the receiver's clock rises to each frame's arrival and then
//! pays the verify + host→device apply cost — so shard `k+1` is being
//! framed while shard `k` is in flight and shard `k−1` is being
//! applied. Any stall, abort, or corruption on the stream degrades
//! safely: the receiver falls back to the store-based restore path
//! ([`crate::restore::load_for_rank_parallel`], which fetches shards
//! through a bounded concurrent pool).

use bytes::{Bytes, BytesMut};
use collectives::ledger::{retained_ranges, GradLedger};
use collectives::{CollKind, CommWorld};
use dltrain::TrainState;
use simcore::codec::{self, Decode, Encode, Encoder};
use simcore::cost::CostModel;
use simcore::{RankId, SimError, SimResult};
use std::collections::BTreeMap;
use std::ops::Range;
use std::time::{Duration, Instant};

/// Mailbox tag reserved for the recovery state stream (the byte inbox
/// is disjoint from the f32 activation/gradient mailboxes, but a
/// dedicated tag keeps frames self-describing in dumps).
pub const TAG_STATE_STREAM: u64 = 0x53_54_41_54; // "STAT"

/// Mailbox tag for in-network ledger-slice streams: survivors shipping
/// their retained gradient shard slices to a replacement rank.
pub const TAG_LEDGER_STREAM: u64 = 0x4C_45_44_47; // "LEDG"

/// Sequence number of the stream preamble; shard `i` travels at
/// sequence `i + 1`.
const SEQ_HEADER: u64 = 0;

/// Stream preamble: what the receiver should expect before the first
/// shard arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHeader {
    /// Iteration of the streamed state (cross-checked after decode).
    pub iteration: u64,
    /// Number of CRC-framed shards that follow.
    pub n_shards: u64,
    /// Total framed bytes on the wire (progress accounting).
    pub total_bytes: u64,
}

impl Encode for StreamHeader {
    fn encode(&self, buf: &mut BytesMut) {
        self.iteration.encode(buf);
        self.n_shards.encode(buf);
        self.total_bytes.encode(buf);
    }
}

impl Decode for StreamHeader {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        Ok(StreamHeader {
            iteration: u64::decode(buf)?,
            n_shards: u64::decode(buf)?,
            total_bytes: u64::decode(buf)?,
        })
    }
}

/// Streams `state` to `dst` as CRC-framed codec shards: a framed
/// [`StreamHeader`] preamble, then one [`codec::frame_shard`] frame per
/// shard. The sender's clock accrues the per-shard framing cost before
/// each frame enters the wire; `send_bytes` charges the p2p transfer on
/// top, so downstream frames are timestamped progressively later and
/// the receiver can overlap applying early shards with the transfer of
/// late ones.
#[allow(clippy::too_many_arguments)]
pub fn send_state(
    world: &CommWorld,
    cost: &CostModel,
    src: RankId,
    src_clock_idx: usize,
    dst: RankId,
    same_node: bool,
    state: &TrainState,
    shard_bytes: usize,
) -> SimResult<StreamHeader> {
    send_state_frames(
        world,
        cost,
        src,
        src_clock_idx,
        dst,
        same_node,
        state,
        shard_bytes,
        None,
    )
}

/// Fault-injection variant of [`send_state`]: the sender dies after
/// emitting `keep_frames` frames (the preamble counts as the first), so
/// the receiver observes a truncated stream — exactly what a replica
/// crashing mid-recovery-transfer produces — and must fall back to the
/// store. `keep_frames = 0` is a sender that dies before the preamble.
#[allow(clippy::too_many_arguments)]
pub fn send_state_truncated(
    world: &CommWorld,
    cost: &CostModel,
    src: RankId,
    src_clock_idx: usize,
    dst: RankId,
    same_node: bool,
    state: &TrainState,
    shard_bytes: usize,
    keep_frames: usize,
) -> SimResult<StreamHeader> {
    send_state_frames(
        world,
        cost,
        src,
        src_clock_idx,
        dst,
        same_node,
        state,
        shard_bytes,
        Some(keep_frames),
    )
}

#[allow(clippy::too_many_arguments)]
fn send_state_frames(
    world: &CommWorld,
    cost: &CostModel,
    src: RankId,
    src_clock_idx: usize,
    dst: RankId,
    same_node: bool,
    state: &TrainState,
    shard_bytes: usize,
    keep_frames: Option<usize>,
) -> SimResult<StreamHeader> {
    let mut enc = Encoder::new(shard_bytes.max(1));
    enc.write(state);
    let shards = enc.finish();
    let header = StreamHeader {
        iteration: state.iteration,
        n_shards: shards.len() as u64,
        total_bytes: shards.iter().map(|s| s.len() as u64).sum(),
    };
    let limit = keep_frames.unwrap_or(usize::MAX);
    if limit == 0 {
        return Ok(header);
    }
    world.send_bytes(
        src,
        src_clock_idx,
        dst,
        TAG_STATE_STREAM,
        SEQ_HEADER,
        codec::encode_framed(&header),
        same_node,
    )?;
    for (i, frame) in shards.into_iter().enumerate() {
        if i + 1 >= limit {
            break;
        }
        world
            .clock()
            .advance(src_clock_idx, cost.shard_encode(frame.len() as u64));
        world.send_bytes(
            src,
            src_clock_idx,
            dst,
            TAG_STATE_STREAM,
            i as u64 + 1,
            frame,
            same_node,
        )?;
    }
    Ok(header)
}

/// Polls the byte mailbox for one frame until `deadline` (real time).
/// A missing frame past the deadline is the dead-replica signature and
/// surfaces as [`SimError::CollectiveTimeout`] naming the sender.
fn recv_frame(
    world: &CommWorld,
    src: RankId,
    dst: RankId,
    dst_clock_idx: usize,
    tag: u64,
    seq: u64,
    deadline: Instant,
) -> SimResult<Bytes> {
    loop {
        if let Some(frame) = world.try_recv_bytes(src, dst, dst_clock_idx, tag, seq)? {
            return Ok(frame);
        }
        if Instant::now() >= deadline {
            return Err(SimError::CollectiveTimeout { rank: src });
        }
        // jitlint::allow(virtual_time): bounded 1ms poll against a real
        // deadline — dead-replica detection has no virtual-time signal.
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Receives a streamed [`TrainState`] from `src`, verifying every
/// shard's CRC frame and the decoded iteration against the preamble.
/// `patience` bounds (in real time) how long the receiver waits for any
/// single frame before declaring the sending replica dead; the caller
/// falls back to the store-based restore on any error.
pub fn recv_state(
    world: &CommWorld,
    cost: &CostModel,
    src: RankId,
    dst: RankId,
    dst_clock_idx: usize,
    patience: Duration,
) -> SimResult<TrainState> {
    let deadline = Instant::now() + patience;
    let preamble = recv_frame(
        world,
        src,
        dst,
        dst_clock_idx,
        TAG_STATE_STREAM,
        SEQ_HEADER,
        deadline,
    )?;
    let header: StreamHeader = codec::decode_framed(&preamble)?;
    if header.n_shards == 0 {
        return Err(SimError::Protocol(format!(
            "recovery stream from {src}: empty shard set"
        )));
    }
    let mut payloads = BytesMut::with_capacity(header.total_bytes as usize);
    for i in 0..header.n_shards {
        let mut frame = recv_frame(
            world,
            src,
            dst,
            dst_clock_idx,
            TAG_STATE_STREAM,
            i + 1,
            deadline,
        )?;
        let (index, payload) = codec::decode_shard(&mut frame)?;
        if index as u64 != i {
            return Err(SimError::Protocol(format!(
                "recovery stream from {src}: shard {index} arrived at slot {i}"
            )));
        }
        if !frame.is_empty() {
            return Err(SimError::Codec(format!(
                "recovery stream from {src}: {} trailing bytes after shard {i}",
                frame.len()
            )));
        }
        // Applying the shard: the CRC/staging pass plus the host→device
        // upload of the payload.
        world.clock().advance(
            dst_clock_idx,
            cost.shard_encode(payload.len() as u64) + cost.memcpy(payload.len() as u64),
        );
        payloads.extend_from_slice(&payload);
    }
    let mut logical = payloads.freeze();
    let state = TrainState::decode(&mut logical)
        .map_err(|e| SimError::Codec(format!("recovery stream from {src}: {e}")))?;
    if !logical.is_empty() {
        return Err(SimError::Codec(format!(
            "recovery stream from {src}: {} trailing bytes after state decode",
            logical.len()
        )));
    }
    if state.iteration != header.iteration {
        return Err(SimError::Protocol(format!(
            "recovery stream from {src}: iteration {} does not match preamble {}",
            state.iteration, header.iteration
        )));
    }
    Ok(state)
}

// ---------------------------------------------------------------------------
// In-network ledger streaming: survivors → replacement rank.
// ---------------------------------------------------------------------------

fn kind_to_u8(kind: CollKind) -> u8 {
    match kind {
        CollKind::AllReduce => 0,
        CollKind::AllGather => 1,
        CollKind::ReduceScatter => 2,
        CollKind::Broadcast => 3,
        CollKind::Barrier => 4,
        CollKind::Rendezvous => 5,
    }
}

fn u8_to_kind(v: u8) -> SimResult<CollKind> {
    Ok(match v {
        0 => CollKind::AllReduce,
        1 => CollKind::AllGather,
        2 => CollKind::ReduceScatter,
        3 => CollKind::Broadcast,
        4 => CollKind::Barrier,
        5 => CollKind::Rendezvous,
        other => {
            return Err(SimError::Codec(format!(
                "ledger stream: unknown collective kind byte {other}"
            )))
        }
    })
}

/// Preamble of one survivor's ledger stream: how many slice frames
/// follow and the epoch range they were filtered to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerStreamHeader {
    /// Number of [`LedgerSlice`] frames that follow the preamble.
    pub n_frames: u64,
    /// First epoch covered (inclusive).
    pub epoch_lo: u64,
    /// One past the last epoch covered.
    pub epoch_hi: u64,
}

impl Encode for LedgerStreamHeader {
    fn encode(&self, buf: &mut BytesMut) {
        self.n_frames.encode(buf);
        self.epoch_lo.encode(buf);
        self.epoch_hi.encode(buf);
    }
}

impl Decode for LedgerStreamHeader {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        Ok(LedgerStreamHeader {
            n_frames: u64::decode(buf)?,
            epoch_lo: u64::decode(buf)?,
            epoch_hi: u64::decode(buf)?,
        })
    }
}

/// One retained shard slice on the wire: enough metadata for the
/// replacement rank to place it inside the right generation's result.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerSlice {
    /// Iteration epoch of the generation.
    pub epoch: u64,
    /// Collective generation number on the tapped communicator.
    pub gen: u64,
    /// Collective kind (validated, not interpreted, by the receiver).
    pub kind: CollKind,
    /// Group size at record time.
    pub members: u64,
    /// Full result length in elements.
    pub total_len: u64,
    /// Element offset of this slice inside the full result.
    pub start: u64,
    /// The retained elements.
    pub data: Vec<f32>,
}

impl Encode for LedgerSlice {
    fn encode(&self, buf: &mut BytesMut) {
        self.epoch.encode(buf);
        self.gen.encode(buf);
        kind_to_u8(self.kind).encode(buf);
        self.members.encode(buf);
        self.total_len.encode(buf);
        self.start.encode(buf);
        codec::encode_f32_slice(&self.data, buf);
    }
}

impl Decode for LedgerSlice {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        Ok(LedgerSlice {
            epoch: u64::decode(buf)?,
            gen: u64::decode(buf)?,
            kind: u8_to_kind(u8::decode(buf)?)?,
            members: u64::decode(buf)?,
            total_len: u64::decode(buf)?,
            start: u64::decode(buf)?,
            data: codec::decode_f32_slice(buf)?,
        })
    }
}

/// Streams every shard slice a survivor's ledger retains for the epoch
/// range `epochs` to the replacement rank `dst`: a framed
/// [`LedgerStreamHeader`] preamble, then one CRC frame per retained
/// range per generation. Pure ledger reads — no checkpoint store, no
/// re-reduction; the sender's clock pays the per-slice framing cost, the
/// wire charges p2p transfer on top. Returns the number of slice frames
/// shipped.
#[allow(clippy::too_many_arguments)]
pub fn send_ledger_slices(
    world: &CommWorld,
    cost: &CostModel,
    src: RankId,
    src_clock_idx: usize,
    dst: RankId,
    same_node: bool,
    ledger: &GradLedger,
    epochs: Range<u64>,
) -> SimResult<u64> {
    let mut slices: Vec<LedgerSlice> = Vec::new();
    for meta in ledger.manifest() {
        if !epochs.contains(&meta.epoch) {
            continue;
        }
        for range in retained_ranges(meta.len, meta.members, meta.pos) {
            let Some(data) = ledger.retained_slice(meta.gen, range.clone()) else {
                continue;
            };
            slices.push(LedgerSlice {
                epoch: meta.epoch,
                gen: meta.gen,
                kind: meta.kind,
                members: meta.members as u64,
                total_len: meta.len as u64,
                start: range.start as u64,
                data,
            });
        }
    }
    let header = LedgerStreamHeader {
        n_frames: slices.len() as u64,
        epoch_lo: epochs.start,
        epoch_hi: epochs.end,
    };
    world.send_bytes(
        src,
        src_clock_idx,
        dst,
        TAG_LEDGER_STREAM,
        SEQ_HEADER,
        codec::encode_framed(&header),
        same_node,
    )?;
    let n = slices.len() as u64;
    for (i, slice) in slices.into_iter().enumerate() {
        let mut payload = BytesMut::new();
        slice.encode(&mut payload);
        let frame = codec::frame_shard(i as u32, &payload);
        world
            .clock()
            .advance(src_clock_idx, cost.shard_encode(frame.len() as u64));
        world.send_bytes(
            src,
            src_clock_idx,
            dst,
            TAG_LEDGER_STREAM,
            i as u64 + 1,
            frame,
            same_node,
        )?;
    }
    Ok(n)
}

struct PendingGen {
    kind: CollKind,
    members: u64,
    total_len: usize,
    /// (start, data), possibly overlapping across senders.
    pieces: Vec<(usize, Vec<f32>)>,
}

/// Receives the survivors' ledger streams and reassembles, per epoch in
/// `epochs` and per generation in generation order, the full reduced
/// result vectors — the exact input [`replay_reduced_history`]
/// (`dltrain::RankTrainer`) needs to rebuild the dead rank's state.
///
/// Errors (all of which send the caller down the fallback chain):
/// * a sender goes silent past `patience` → [`SimError::CollectiveTimeout`];
/// * an epoch in the requested range arrives with no generations, or a
///   generation's slices do not cover its full result — the
///   "failed rank and its ring successor both died" coverage gap;
/// * CRC / framing / metadata mismatches.
pub fn recv_ledger_history(
    world: &CommWorld,
    cost: &CostModel,
    srcs: &[RankId],
    dst: RankId,
    dst_clock_idx: usize,
    patience: Duration,
    epochs: Range<u64>,
) -> SimResult<Vec<Vec<Vec<f32>>>> {
    let mut gens: BTreeMap<(u64, u64), PendingGen> = BTreeMap::new();
    for &src in srcs {
        let deadline = Instant::now() + patience;
        let preamble = recv_frame(
            world,
            src,
            dst,
            dst_clock_idx,
            TAG_LEDGER_STREAM,
            SEQ_HEADER,
            deadline,
        )?;
        let header: LedgerStreamHeader = codec::decode_framed(&preamble)?;
        for i in 0..header.n_frames {
            let mut frame = recv_frame(
                world,
                src,
                dst,
                dst_clock_idx,
                TAG_LEDGER_STREAM,
                i + 1,
                deadline,
            )?;
            let (index, mut payload) = codec::decode_shard(&mut frame)?;
            if index as u64 != i {
                return Err(SimError::Protocol(format!(
                    "ledger stream from {src}: slice {index} arrived at slot {i}"
                )));
            }
            // Verify + stage + host→device upload of the slice bytes.
            world.clock().advance(
                dst_clock_idx,
                cost.shard_encode(payload.len() as u64) + cost.memcpy(payload.len() as u64),
            );
            let slice = LedgerSlice::decode(&mut payload)?;
            if !epochs.contains(&slice.epoch) {
                return Err(SimError::Protocol(format!(
                    "ledger stream from {src}: epoch {} outside requested {:?}",
                    slice.epoch, epochs
                )));
            }
            let entry = gens
                .entry((slice.epoch, slice.gen))
                .or_insert_with(|| PendingGen {
                    kind: slice.kind,
                    members: slice.members,
                    total_len: slice.total_len as usize,
                    pieces: Vec::new(),
                });
            if entry.kind != slice.kind
                || entry.members != slice.members
                || entry.total_len != slice.total_len as usize
            {
                return Err(SimError::Protocol(format!(
                    "ledger stream from {src}: generation {} metadata disagrees across senders",
                    slice.gen
                )));
            }
            entry.pieces.push((slice.start as usize, slice.data));
        }
    }
    let mut history: Vec<Vec<Vec<f32>>> = Vec::new();
    for epoch in epochs.clone() {
        let in_epoch: Vec<(&(u64, u64), &PendingGen)> =
            gens.range((epoch, 0)..=(epoch, u64::MAX)).collect();
        if in_epoch.is_empty() {
            return Err(SimError::Protocol(format!(
                "in-network history gap: no generations retained for epoch {epoch}"
            )));
        }
        let mut fused = Vec::with_capacity(in_epoch.len());
        for (&(_, gen), pending) in in_epoch {
            fused.push(assemble_gen(gen, pending)?);
        }
        history.push(fused);
    }
    Ok(history)
}

/// Stitches one generation's slices into its full result, requiring
/// gap-free coverage of `0..total_len`. Overlaps are fine (two
/// survivors legitimately retain the same shard); gaps are the lost-
/// coverage signature and poison the in-network path.
fn assemble_gen(gen: u64, pending: &PendingGen) -> SimResult<Vec<f32>> {
    let mut out = vec![0.0f32; pending.total_len];
    let mut pieces: Vec<&(usize, Vec<f32>)> = pending.pieces.iter().collect();
    pieces.sort_by_key(|(start, _)| *start);
    let mut covered = 0usize;
    for (start, data) in pieces {
        if *start > covered {
            return Err(SimError::Protocol(format!(
                "in-network coverage gap in generation {gen}: elements {covered}..{start} \
                 held by no surviving ledger"
            )));
        }
        let end = start + data.len();
        if end > pending.total_len {
            return Err(SimError::Protocol(format!(
                "ledger slice overruns generation {gen}: {start}..{end} > {}",
                pending.total_len
            )));
        }
        out[*start..end].copy_from_slice(data);
        covered = covered.max(end);
    }
    if covered < pending.total_len {
        return Err(SimError::Protocol(format!(
            "in-network coverage gap in generation {gen}: elements {covered}..{} \
             held by no surviving ledger",
            pending.total_len
        )));
    }
    Ok(out)
}

/// Which leg of the recovery chain produced the restored state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// Reconstructed from survivors' gradient ledgers + deterministic
    /// replay — zero checkpoint-store objects touched.
    InNetwork,
    /// Streamed rank-to-rank from a healthy replica's restored state
    /// (the PR 5 path; one store read, by the owner only).
    StreamedReplica,
    /// Full store round-trip — the §3.3 baseline and the last resort,
    /// fetched through the parallel restore plane
    /// ([`crate::restore::load_for_rank_parallel`]).
    Store,
}

/// The recovery fallback chain: in-network ledger reconstruction first,
/// the streamed-replica path when ledgers cannot cover (failed rank and
/// its ring successor both dead, eviction past the window), and the
/// checkpoint store as the always-available floor. Each leg runs only
/// if the previous one failed; the winning leg is reported alongside
/// the state so callers can assert (and account) the path taken.
pub fn restore_with_fallback<A, B, C>(
    in_network: A,
    streamed: B,
    store: C,
) -> SimResult<(TrainState, RecoverySource)>
where
    A: FnOnce() -> SimResult<TrainState>,
    B: FnOnce() -> SimResult<TrainState>,
    C: FnOnce() -> SimResult<TrainState>,
{
    if let Ok(state) = in_network() {
        return Ok((state, RecoverySource::InNetwork));
    }
    if let Ok(state) = streamed() {
        return Ok((state, RecoverySource::StreamedReplica));
    }
    store().map(|state| (state, RecoverySource::Store))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::ClockBoard;
    use simcore::SimTime;
    use simgpu::BufferTag;
    use std::sync::Arc;

    fn state(elems: usize) -> TrainState {
        let data: Vec<f32> = (0..elems).map(|i| (i as f32).sin()).collect();
        TrainState {
            iteration: 7,
            opt_t: 7,
            buffers: vec![("model.w".into(), BufferTag::Param, data)],
            logical_bytes: (elems * 4) as u64,
        }
    }

    fn world(n: usize) -> (Arc<CommWorld>, Arc<ClockBoard>) {
        let clock = Arc::new(ClockBoard::new(n));
        (CommWorld::new(clock.clone(), CostModel::v100(), 8), clock)
    }

    #[test]
    fn streamed_state_round_trips_bitwise() -> SimResult<()> {
        let (w, _) = world(2);
        let cost = CostModel::v100();
        let st = state(10_000);
        // Non-aligned shard size forces a partial trailing shard.
        send_state(&w, &cost, RankId(0), 0, RankId(1), true, &st, 1000)?;
        let got = recv_state(&w, &cost, RankId(0), RankId(1), 1, Duration::from_secs(5))?;
        assert_eq!(got.iteration, st.iteration);
        assert_eq!(got.buffers.len(), 1);
        let (ref name, tag, ref data) = got.buffers[0];
        assert_eq!(name, "model.w");
        assert_eq!(tag, BufferTag::Param);
        let want: Vec<u32> = st.buffers[0].2.iter().map(|v| v.to_bits()).collect();
        let have: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
        assert_eq!(want, have, "streamed state must be bit-identical");
        Ok(())
    }

    #[test]
    fn transfer_is_pipelined_not_store_priced() -> SimResult<()> {
        let (w, clock) = world(2);
        let cost = CostModel::v100();
        let st = state(1 << 20); // 4 MiB of f32s
        send_state(&w, &cost, RankId(0), 0, RankId(1), true, &st, 256 * 1024)?;
        recv_state(&w, &cost, RankId(0), RankId(1), 1, Duration::from_secs(5))?;
        let streamed = clock.now(1);
        // The store round-trip the stream replaces: write then read
        // through the disk tier (plus the process restart both paths
        // share, omitted from both sides here).
        let bytes = st.logical_bytes;
        let round_trip = cost.checkpoint_write(bytes, simcore::cost::StorageTier::Disk, 8)
            + cost.checkpoint_read(bytes, simcore::cost::StorageTier::Disk, 8);
        assert!(
            streamed < round_trip,
            "pipelined stream {streamed} must beat store round-trip {round_trip}"
        );
        assert!(streamed > SimTime::ZERO);
        Ok(())
    }

    #[test]
    fn dead_sender_times_out_with_peer_signature() {
        let (w, _) = world(2);
        let cost = CostModel::v100();
        // Nothing was ever sent: the receiver must not hang forever.
        let err = recv_state(
            &w,
            &cost,
            RankId(0),
            RankId(1),
            1,
            Duration::from_millis(30),
        )
        .unwrap_err();
        assert_eq!(err, SimError::CollectiveTimeout { rank: RankId(0) });
    }

    #[test]
    fn truncated_stream_times_out_mid_transfer() -> SimResult<()> {
        let (w, _) = world(2);
        let cost = CostModel::v100();
        let st = state(10_000);
        // Replica dies mid-stream: only the preamble and shard 0 ever
        // reach the wire.
        let mut enc = Encoder::new(1000);
        enc.write(&st);
        let shards = enc.finish();
        assert!(shards.len() > 2, "expected a multi-shard stream");
        let header = StreamHeader {
            iteration: st.iteration,
            n_shards: shards.len() as u64,
            total_bytes: shards.iter().map(|s| s.len() as u64).sum(),
        };
        w.send_bytes(
            RankId(0),
            0,
            RankId(1),
            TAG_STATE_STREAM,
            SEQ_HEADER,
            codec::encode_framed(&header),
            true,
        )?;
        w.send_bytes(
            RankId(0),
            0,
            RankId(1),
            TAG_STATE_STREAM,
            1,
            shards[0].clone(),
            true,
        )?;
        let err = recv_state(
            &w,
            &cost,
            RankId(0),
            RankId(1),
            1,
            Duration::from_millis(30),
        )
        .unwrap_err();
        assert_eq!(err, SimError::CollectiveTimeout { rank: RankId(0) });
        Ok(())
    }
}

//! Checkpoint file format, naming scheme, and assembly.
//!
//! Implements §3.2–§3.3's persistence protocol:
//!
//! * each rank writes to a **rank-dependent path** so concurrent JIT
//!   checkpoints never collide;
//! * the payload is written first, then a **metadata sidecar** carrying
//!   the payload checksum — a missing or mismatching sidecar marks an
//!   incomplete/corrupt checkpoint (a rank may die *while* checkpointing);
//! * on restore, [`jit_get_checkpoint_path`] finds a complete checkpoint
//!   from **any data-parallel replica** of the reader's (pipeline stage,
//!   tensor partition) cell, resolving the *i* vs *i+1* ambiguity by
//!   choosing the newest iteration available for **every** cell.
//!
//! The same format is used by the periodic-checkpointing baselines, which
//! is what makes JIT + low-frequency periodic checkpointing compose
//! (§6.3): recovery just takes the newest complete checkpoint of either
//! kind.

use bytes::Bytes;
use cluster::SharedStore;
use dltrain::TrainState;
use serde::{Deserialize, Serialize};
use simcore::codec::{decode_framed, encode_framed, Decode, Encode};
use simcore::layout::ParallelLayout;
use simcore::{JobId, RankId, SimError, SimResult};
use std::collections::BTreeMap;

/// Checkpoint flavor (JIT-on-failure or periodic), part of the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptKind {
    /// Just-in-time checkpoint, written after failure detection.
    Jit,
    /// Periodic checkpoint, written on a schedule.
    Periodic,
}

impl CkptKind {
    fn dir(self) -> &'static str {
        match self {
            CkptKind::Jit => "jit",
            CkptKind::Periodic => "periodic",
        }
    }
}

/// Metadata sidecar marking a complete, verifiable checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointMeta {
    /// Iteration the checkpoint resumes at.
    pub iteration: u64,
    /// Writing rank.
    pub rank: u32,
    /// CRC-64 of the payload object.
    pub payload_crc: u64,
    /// Payload length in (stored) bytes.
    pub payload_len: u64,
    /// Logical checkpoint size (cost accounting on restore).
    pub logical_bytes: u64,
}

impl CheckpointMeta {
    /// Version of the persisted sidecar layout. The sidecar outlives the
    /// process that wrote it — restore runs in a *new* incarnation of the
    /// binary — so any field change must bump this and decode rejects
    /// mismatched versions instead of silently misreading old bytes.
    pub const SCHEMA_VERSION: u16 = 1;
}

impl Encode for CheckpointMeta {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        Self::SCHEMA_VERSION.encode(buf);
        self.iteration.encode(buf);
        self.rank.encode(buf);
        self.payload_crc.encode(buf);
        self.payload_len.encode(buf);
        self.logical_bytes.encode(buf);
    }
}

impl Decode for CheckpointMeta {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        let version = u16::decode(buf)?;
        if version != Self::SCHEMA_VERSION {
            return Err(SimError::CorruptCheckpoint(format!(
                "metadata schema version {version} (this binary reads {})",
                Self::SCHEMA_VERSION
            )));
        }
        Ok(CheckpointMeta {
            iteration: u64::decode(buf)?,
            rank: u32::decode(buf)?,
            payload_crc: u64::decode(buf)?,
            payload_len: u64::decode(buf)?,
            logical_bytes: u64::decode(buf)?,
        })
    }
}

/// Path of a checkpoint payload object.
pub fn data_path(
    job: JobId,
    kind: CkptKind,
    iteration: u64,
    stage: usize,
    part: usize,
    dp: usize,
) -> String {
    format!(
        "ckpt/{job}/{}/it{iteration:010}/s{stage}p{part}/dp{dp}/data",
        kind.dir()
    )
}

/// Path of a checkpoint metadata sidecar.
pub fn meta_path(
    job: JobId,
    kind: CkptKind,
    iteration: u64,
    stage: usize,
    part: usize,
    dp: usize,
) -> String {
    format!(
        "ckpt/{job}/{}/it{iteration:010}/s{stage}p{part}/dp{dp}/meta",
        kind.dir()
    )
}

/// Writes a rank's checkpoint: payload first, then the metadata sidecar
/// (the completion marker). The caller charges the write cost to the
/// rank's clock.
#[allow(clippy::too_many_arguments)]
pub fn write_checkpoint(
    store: &SharedStore,
    job: JobId,
    kind: CkptKind,
    rank: RankId,
    stage: usize,
    part: usize,
    dp: usize,
    state: &TrainState,
) -> SimResult<()> {
    let payload = encode_framed(state);
    let crc = simcore::codec::crc64(&payload);
    let len = payload.len() as u64;
    store.put(
        &data_path(job, kind, state.iteration, stage, part, dp),
        payload,
    )?;
    let meta = CheckpointMeta {
        iteration: state.iteration,
        rank: rank.0,
        payload_crc: crc,
        payload_len: len,
        logical_bytes: state.logical_bytes,
    };
    store.put(
        &meta_path(job, kind, state.iteration, stage, part, dp),
        encode_framed(&meta),
    )?;
    Ok(())
}

/// Reads and fully validates one checkpoint object (metadata present,
/// lengths match, CRC matches, payload decodes).
pub fn read_checkpoint(
    store: &SharedStore,
    job: JobId,
    kind: CkptKind,
    iteration: u64,
    stage: usize,
    part: usize,
    dp: usize,
) -> SimResult<(TrainState, CheckpointMeta)> {
    let mpath = meta_path(job, kind, iteration, stage, part, dp);
    let meta: CheckpointMeta = decode_framed(&store.get(&mpath)?)
        .map_err(|e| SimError::CorruptCheckpoint(format!("{mpath}: {e}")))?;
    let dpath = data_path(job, kind, iteration, stage, part, dp);
    let payload = store.get(&dpath)?;
    if payload.len() as u64 != meta.payload_len {
        return Err(SimError::CorruptCheckpoint(format!(
            "{dpath}: truncated ({} of {} bytes)",
            payload.len(),
            meta.payload_len
        )));
    }
    if simcore::codec::crc64(&payload) != meta.payload_crc {
        return Err(SimError::CorruptCheckpoint(format!(
            "{dpath}: checksum mismatch"
        )));
    }
    let state: TrainState = decode_framed(&payload)
        .map_err(|e| SimError::CorruptCheckpoint(format!("{dpath}: {e}")))?;
    if state.iteration != meta.iteration {
        return Err(SimError::CorruptCheckpoint(format!(
            "{dpath}: iteration mismatch ({} vs {})",
            state.iteration, meta.iteration
        )));
    }
    Ok((state, meta))
}

/// A resolved checkpoint choice for one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellChoice {
    /// Iteration chosen.
    pub iteration: u64,
    /// Which data-parallel replica's file to read.
    pub dp: usize,
    /// Checkpoint flavor found.
    pub kind: CkptKind,
}

fn complete_iterations_for_cell(
    store: &SharedStore,
    job: JobId,
    kind: CkptKind,
    layout: &ParallelLayout,
    stage: usize,
    part: usize,
) -> BTreeMap<u64, usize> {
    // iteration → a dp replica with a *valid* checkpoint.
    let mut out = BTreeMap::new();
    let prefix = format!("ckpt/{job}/{}/", kind.dir());
    for path in store.list(&prefix) {
        if !path.ends_with("/meta") {
            continue;
        }
        // Parse it{N}/s{stage}p{part}/dp{d}/meta.
        let Some(rest) = path.strip_prefix(&prefix) else {
            continue;
        };
        let mut parts = rest.split('/');
        let (Some(it), Some(cell), Some(dp_s), Some(_)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let Ok(iteration) = it.trim_start_matches("it").parse::<u64>() else {
            continue;
        };
        if cell != format!("s{stage}p{part}") {
            continue;
        }
        let Ok(dp) = dp_s.trim_start_matches("dp").parse::<usize>() else {
            continue;
        };
        if dp >= layout.dp {
            continue;
        }
        if out.contains_key(&iteration) {
            continue;
        }
        // Validate before accepting: a torn write must not count.
        if read_checkpoint(store, job, kind, iteration, stage, part, dp).is_ok() {
            out.insert(iteration, dp);
        }
    }
    out
}

/// Resolves, for every (stage, partition) cell, the newest checkpoint
/// iteration available for **all** cells — discarding corrupt or
/// incomplete files — and which replica to read it from. Searches both
/// JIT and periodic checkpoints and takes the newest (the combined
/// JIT + PC mode of §6.3).
pub fn assemble(
    store: &SharedStore,
    job: JobId,
    layout: &ParallelLayout,
) -> SimResult<BTreeMap<(usize, usize), CellChoice>> {
    let cells = layout.cells();
    // For each cell, map iteration → (dp, kind), preferring JIT files
    // (either is valid; JIT files are what failure recovery wrote).
    let mut per_cell: Vec<BTreeMap<u64, (usize, CkptKind)>> = Vec::with_capacity(cells.len());
    for &(stage, part) in &cells {
        let mut m: BTreeMap<u64, (usize, CkptKind)> = BTreeMap::new();
        for kind in [CkptKind::Jit, CkptKind::Periodic] {
            for (it, dp) in complete_iterations_for_cell(store, job, kind, layout, stage, part) {
                m.entry(it).or_insert((dp, kind));
            }
        }
        per_cell.push(m);
    }
    // Intersect iteration sets across cells; take the max.
    let mut common: Option<Vec<u64>> = None;
    for m in &per_cell {
        let its: Vec<u64> = m.keys().copied().collect();
        common = Some(match common {
            None => its,
            Some(prev) => prev.into_iter().filter(|i| its.contains(i)).collect(),
        });
    }
    let best = common
        .unwrap_or_default()
        .into_iter()
        .max()
        .ok_or_else(|| {
            SimError::NoCheckpointAvailable(format!(
                "no iteration has a complete checkpoint for every cell of {job}"
            ))
        })?;
    let mut out = BTreeMap::new();
    for (idx, &(stage, part)) in cells.iter().enumerate() {
        let (dp, kind) = per_cell[idx][&best];
        out.insert(
            (stage, part),
            CellChoice {
                iteration: best,
                dp,
                kind,
            },
        );
    }
    Ok(out)
}

/// §3.3's `jit_get_checkpoint_path`: the payload path a restoring rank
/// should load — a complete checkpoint from any data-parallel replica of
/// its own cell, at an iteration consistent across the whole job.
pub fn jit_get_checkpoint_path(
    store: &SharedStore,
    job: JobId,
    layout: &ParallelLayout,
    rank: RankId,
) -> SimResult<String> {
    let coord = layout.coord(rank);
    let plan = assemble(store, job, layout)?;
    let choice = plan[&(coord.stage, coord.part)];
    Ok(data_path(
        job,
        choice.kind,
        choice.iteration,
        coord.stage,
        coord.part,
        choice.dp,
    ))
}

/// Loads the resolved checkpoint for `rank` (validated).
pub fn load_for_rank(
    store: &SharedStore,
    job: JobId,
    layout: &ParallelLayout,
    rank: RankId,
) -> SimResult<(TrainState, CheckpointMeta)> {
    let coord = layout.coord(rank);
    let plan = assemble(store, job, layout)?;
    let choice = plan[&(coord.stage, coord.part)];
    read_checkpoint(
        store,
        job,
        choice.kind,
        choice.iteration,
        coord.stage,
        coord.part,
        choice.dp,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgpu::BufferTag;

    fn state(it: u64, v: f32) -> TrainState {
        TrainState {
            iteration: it,
            opt_t: it as u32,
            buffers: vec![("w".into(), BufferTag::Param, vec![v; 4])],
            logical_bytes: 16,
        }
    }

    fn job() -> JobId {
        JobId(0)
    }

    #[test]
    fn write_read_round_trip() -> SimResult<()> {
        let store = SharedStore::new();
        let s = state(7, 1.5);
        write_checkpoint(&store, job(), CkptKind::Jit, RankId(0), 0, 0, 0, &s)?;
        let (back, meta) = read_checkpoint(&store, job(), CkptKind::Jit, 7, 0, 0, 0)?;
        assert_eq!(back, s);
        assert_eq!(meta.iteration, 7);
        assert_eq!(meta.logical_bytes, 16);
        Ok(())
    }

    #[test]
    fn torn_write_is_rejected_and_skipped() -> SimResult<()> {
        let store = SharedStore::new();
        let layout = ParallelLayout::data_parallel(2);
        // Replica 0 writes a good checkpoint at it 5.
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &state(5, 1.0),
        )?;
        // Replica 1 dies mid-write at it 6: payload truncated, then (to
        // be adversarial) the metadata still lands.
        store.fail_next_write(0.5);
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(1),
            0,
            0,
            1,
            &state(6, 2.0),
        )?;
        // Assembly must fall back to iteration 5 from replica 0.
        let plan = assemble(&store, job(), &layout)?;
        let choice = plan[&(0, 0)];
        assert_eq!(choice.iteration, 5);
        assert_eq!(choice.dp, 0);
        Ok(())
    }

    #[test]
    fn corrupted_payload_is_rejected() -> SimResult<()> {
        let store = SharedStore::new();
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &state(5, 1.0),
        )?;
        store.corrupt(&data_path(job(), CkptKind::Jit, 5, 0, 0, 0))?;
        let err = read_checkpoint(&store, job(), CkptKind::Jit, 5, 0, 0, 0).unwrap_err();
        assert!(matches!(err, SimError::CorruptCheckpoint(_)));
        Ok(())
    }

    #[test]
    fn missing_meta_means_incomplete() -> SimResult<()> {
        let store = SharedStore::new();
        let layout = ParallelLayout::data_parallel(1);
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &state(5, 1.0),
        )?;
        store.delete(&meta_path(job(), CkptKind::Jit, 5, 0, 0, 0));
        assert!(assemble(&store, job(), &layout).is_err());
        Ok(())
    }

    #[test]
    fn i_vs_i_plus_1_resolved_to_common_max() -> SimResult<()> {
        // §3.3: with pipeline stages, one cell may have saved i+1 while
        // another only has i; the job must resume from the newest
        // iteration complete for EVERY cell.
        let store = SharedStore::new();
        let layout = ParallelLayout::three_d(2, 2, 1);
        // Stage 0 has it 10 and 11; stage 1 only it 10.
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &state(10, 1.0),
        )?;
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &state(11, 1.1),
        )?;
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(1),
            1,
            0,
            0,
            &state(10, 2.0),
        )?;
        let plan = assemble(&store, job(), &layout)?;
        assert_eq!(plan[&(0, 0)].iteration, 10);
        assert_eq!(plan[&(1, 0)].iteration, 10);
        // Once stage 1 also has 11, assembly moves forward.
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(1),
            1,
            0,
            1,
            &state(11, 2.1),
        )?;
        let plan = assemble(&store, job(), &layout)?;
        assert_eq!(plan[&(0, 0)].iteration, 11);
        assert_eq!(plan[&(1, 0)].iteration, 11);
        assert_eq!(plan[&(1, 0)].dp, 1, "reads the replica that has it");
        Ok(())
    }

    #[test]
    fn jit_get_checkpoint_path_points_at_own_cell() -> SimResult<()> {
        let store = SharedStore::new();
        let layout = ParallelLayout::three_d(2, 2, 1);
        for (stage, part) in layout.cells() {
            write_checkpoint(
                &store,
                job(),
                CkptKind::Jit,
                RankId(0),
                stage,
                part,
                0,
                &state(3, 1.0),
            )?;
        }
        // Rank 3 in a 2dp×2pp layout: dp=1, stage=1.
        let p = jit_get_checkpoint_path(&store, job(), &layout, RankId(3))?;
        assert!(p.contains("s1p0"), "{p}");
        assert!(p.contains("it0000000003"), "{p}");
        Ok(())
    }

    #[test]
    fn combined_mode_prefers_newest_of_either_kind() -> SimResult<()> {
        let store = SharedStore::new();
        let layout = ParallelLayout::data_parallel(1);
        write_checkpoint(
            &store,
            job(),
            CkptKind::Periodic,
            RankId(0),
            0,
            0,
            0,
            &state(20, 1.0),
        )?;
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &state(25, 2.0),
        )?;
        let plan = assemble(&store, job(), &layout)?;
        assert_eq!(plan[&(0, 0)].iteration, 25);
        assert_eq!(plan[&(0, 0)].kind, CkptKind::Jit);
        // A newer periodic checkpoint wins in turn.
        write_checkpoint(
            &store,
            job(),
            CkptKind::Periodic,
            RankId(0),
            0,
            0,
            0,
            &state(30, 3.0),
        )?;
        let plan = assemble(&store, job(), &layout)?;
        assert_eq!(plan[&(0, 0)].kind, CkptKind::Periodic);
        assert_eq!(plan[&(0, 0)].iteration, 30);
        Ok(())
    }
}

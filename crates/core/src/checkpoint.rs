//! Checkpoint file format, naming scheme, and assembly.
//!
//! Implements §3.2–§3.3's persistence protocol:
//!
//! * each rank writes to a **rank-dependent path** so concurrent JIT
//!   checkpoints never collide;
//! * the payload is written first, then a **metadata sidecar** carrying
//!   the payload checksums — a missing or mismatching sidecar marks an
//!   incomplete/corrupt checkpoint (a rank may die *while* checkpointing);
//! * on restore, [`jit_get_checkpoint_path`] finds a complete checkpoint
//!   from **any data-parallel replica** of the reader's (pipeline stage,
//!   tensor partition) cell, resolving the *i* vs *i+1* ambiguity by
//!   choosing the newest iteration available for **every** cell.
//!
//! # Sharded payloads
//!
//! The paper's §5 stall model makes the checkpoint write stall `o` the
//! dominant wasted-work term, so the payload is not one monolithic blob:
//! a rank's `TrainState` is encoded once into a flat logical byte stream
//! and split into fixed-size **shards** at `shard_bytes` boundaries. Each
//! shard is its own store object (`.../shard00000`, `.../shard00001`, …)
//! and carries its own CRC in the sidecar, which buys three things:
//!
//! 1. **Parallelism** — shards are checksummed and persisted by a bounded
//!    [`std::thread::scope`] worker pool, overlapping CRC with store puts
//!    instead of serializing the whole payload through one pass.
//! 2. **Delta mode** — because shard boundaries are byte offsets into a
//!    deterministic encoding, a training step that mutates only part of
//!    the state leaves most shards bit-identical; those are *skipped* and
//!    the sidecar records a reference to the iteration whose directory
//!    physically holds the bytes ([`ShardMeta::base_iteration`]).
//!    References always point at the original writer (they are collapsed
//!    transitively at write time), so reads never chase chains.
//! 3. **Fine-grained blame** — a torn or bit-rotted object invalidates
//!    one shard, and [`read_checkpoint`] reports the failure *by shard
//!    index* while still validating the siblings.
//!
//! The same format is used by the periodic-checkpointing baselines, which
//! is what makes JIT + low-frequency periodic checkpointing compose
//! (§6.3): recovery just takes the newest complete checkpoint of either
//! kind.

use bytes::{BufMut, Bytes, BytesMut};
use cluster::StorageBackend;
use dltrain::TrainState;
use serde::{Deserialize, Serialize};
use simcore::codec::{decode_framed, encode_framed, Decode, Encode};
use simcore::layout::ParallelLayout;
use simcore::sync::Mutex;
use simcore::{JobId, RankId, SimError, SimResult};
use std::collections::BTreeMap;

/// Checkpoint flavor (JIT-on-failure or periodic), part of the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CkptKind {
    /// Just-in-time checkpoint, written after failure detection.
    Jit,
    /// Periodic checkpoint, written on a schedule.
    Periodic,
}

impl CkptKind {
    fn dir(self) -> &'static str {
        match self {
            CkptKind::Jit => "jit",
            CkptKind::Periodic => "periodic",
        }
    }
}

/// Tuning knobs for the sharded write path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Shard payload size in bytes (boundaries in the logical stream).
    /// Clamped to at least 1.
    pub shard_bytes: usize,
    /// Worker-pool width for per-shard CRC + store puts. The calling
    /// thread always participates, so `1` means "inline, no threads".
    pub workers: usize,
    /// Skip shards whose bytes are unchanged since this cell's previous
    /// checkpoint, recording a reference in the sidecar instead.
    pub delta: bool,
    /// Longest run of consecutive delta checkpoints before the writer is
    /// forced back to a full (no-reuse) checkpoint. Delta references are
    /// collapsed transitively at write time, so *reads* never chase
    /// chains — but every delta generation keeps its base's directory
    /// alive: an unbounded run pins arbitrarily old iterations against
    /// garbage collection, and `list`-driven costs (`read_meta` scans,
    /// `assemble`) grow with job age. The cap bounds how far back any
    /// live reference can reach. `0` disables delta entirely.
    pub max_delta_chain: u32,
}

/// Default bound on consecutive delta generations
/// ([`ShardConfig::max_delta_chain`]): long enough that steady-state
/// writes stay mostly-delta, short enough that retention can always
/// collect a cell's history within a handful of generations.
pub const DEFAULT_MAX_DELTA_CHAIN: u32 = 8;

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shard_bytes: 4 << 20,
            workers: default_shard_workers(),
            delta: true,
            max_delta_chain: DEFAULT_MAX_DELTA_CHAIN,
        }
    }
}

impl ShardConfig {
    /// This configuration with the worker pool auto-sized for `state`:
    /// [`auto_shard_workers`] of the shard count `state` will split into
    /// at this `shard_bytes`. Both checkpoint policies (JIT and the
    /// periodic baselines) route their write sites through this so pool
    /// sizing logic lives in exactly one place.
    pub fn auto_sized_for(&self, state: &TrainState) -> ShardConfig {
        ShardConfig {
            workers: auto_shard_workers(state.shard_count(self.shard_bytes)),
            ..*self
        }
    }
}

/// Default worker-pool width for the sharded write path.
///
/// Shard workers are *not* CPU-bound: each one CRCs its slice and then
/// blocks inside the store put (stripe write-locks, allocator, the
/// storage tier behind them), so the pool wants more threads than cores
/// — an `available_parallelism`-capped pool leaves the store idle
/// whenever its only worker is parked on a lock. The re-measured sweep
/// (EXPERIMENTS.md) shows write throughput climbing ~8x from 1 worker to
/// the 2–4 plateau even on a 1-vCPU host, and staying flat (within
/// noise) out to 16: over-subscription past `2 × cores` buys nothing
/// but scheduling churn. Hence `2 × cores`, floored at the plateau's
/// start (4) and capped at 16.
pub fn default_shard_workers() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (2 * cores).clamp(4, 16)
}

/// Auto-sized pool width for a checkpoint that splits into `n_shards`
/// shards: the host default, but never more workers than shards (extra
/// threads would exit without claiming any work).
pub fn auto_shard_workers(n_shards: usize) -> usize {
    default_shard_workers().min(n_shards.max(1))
}

/// Per-shard record in the metadata sidecar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMeta {
    /// Position of this shard in the logical stream.
    pub index: u32,
    /// Shard payload length in bytes.
    pub len: u64,
    /// CRC-64 of the shard payload.
    pub crc: u64,
    /// `None` when this checkpoint's own directory holds the shard
    /// object; `Some(it)` when the bytes were unchanged and live in
    /// iteration `it`'s directory (delta reuse). Always the *original*
    /// writer — never a further delta reference.
    pub base_iteration: Option<u64>,
}

impl ShardMeta {
    /// Versioned as part of the enclosing [`CheckpointMeta`] sidecar; a
    /// layout change here must bump that schema version.
    pub const SCHEMA_VERSION: u16 = CheckpointMeta::SCHEMA_VERSION;
}

impl Encode for ShardMeta {
    fn encode(&self, buf: &mut BytesMut) {
        self.index.encode(buf);
        self.len.encode(buf);
        self.crc.encode(buf);
        self.base_iteration.encode(buf);
    }
}

impl Decode for ShardMeta {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        Ok(ShardMeta {
            index: u32::decode(buf)?,
            len: u64::decode(buf)?,
            crc: u64::decode(buf)?,
            base_iteration: Option::<u64>::decode(buf)?,
        })
    }
}

/// Metadata sidecar marking a complete, verifiable checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointMeta {
    /// Iteration the checkpoint resumes at.
    pub iteration: u64,
    /// Writing rank.
    pub rank: u32,
    /// CRC-64 over the concatenated per-shard CRCs (little-endian), in
    /// index order — binds the shard *set* without a second full-payload
    /// pass (each shard's bytes are already covered by its own CRC).
    pub payload_crc: u64,
    /// Total logical payload stream length in bytes (sum of shard lens).
    pub payload_len: u64,
    /// Logical checkpoint size (cost accounting on restore).
    pub logical_bytes: u64,
    /// Shard boundary size this checkpoint was written with. Delta reuse
    /// requires the base to have the identical value.
    pub shard_bytes: u64,
    /// Length of the consecutive delta run ending at this checkpoint:
    /// `0` for a full checkpoint (no shard reused), `base.delta_depth+1`
    /// when any shard references a base. The writer refuses to extend a
    /// run past [`ShardConfig::max_delta_chain`] — see that field.
    pub delta_depth: u32,
    /// Per-shard records, in index order.
    pub shards: Vec<ShardMeta>,
}

impl CheckpointMeta {
    /// Version of the persisted sidecar layout. The sidecar outlives the
    /// process that wrote it — restore runs in a *new* incarnation of the
    /// binary — so any field change must bump this and decode rejects
    /// mismatched versions instead of silently misreading old bytes.
    /// v2: sharded payload (per-shard CRCs, delta references).
    /// v3: `delta_depth` (delta-chain accounting for the chain cap).
    pub const SCHEMA_VERSION: u16 = 3;
}

impl Encode for CheckpointMeta {
    fn encode(&self, buf: &mut BytesMut) {
        Self::SCHEMA_VERSION.encode(buf);
        self.iteration.encode(buf);
        self.rank.encode(buf);
        self.payload_crc.encode(buf);
        self.payload_len.encode(buf);
        self.logical_bytes.encode(buf);
        self.shard_bytes.encode(buf);
        self.delta_depth.encode(buf);
        self.shards.encode(buf);
    }
}

impl Decode for CheckpointMeta {
    fn decode(buf: &mut Bytes) -> SimResult<Self> {
        let version = u16::decode(buf)?;
        if version != Self::SCHEMA_VERSION {
            return Err(SimError::CorruptCheckpoint(format!(
                "metadata schema version {version} (this binary reads {})",
                Self::SCHEMA_VERSION
            )));
        }
        Ok(CheckpointMeta {
            iteration: u64::decode(buf)?,
            rank: u32::decode(buf)?,
            payload_crc: u64::decode(buf)?,
            payload_len: u64::decode(buf)?,
            logical_bytes: u64::decode(buf)?,
            shard_bytes: u64::decode(buf)?,
            delta_depth: u32::decode(buf)?,
            shards: Vec::<ShardMeta>::decode(buf)?,
        })
    }
}

/// CRC binding the shard set: CRC-64 over the per-shard CRCs in order.
fn shard_set_crc(shards: &[ShardMeta]) -> u64 {
    let mut b = BytesMut::with_capacity(shards.len() * 8);
    for s in shards {
        b.put_u64_le(s.crc);
    }
    simcore::codec::crc64(&b)
}

/// Directory prefix of every checkpoint a job has written under `kind`
/// — the unit of coordinator retention scans and departure purges.
pub fn job_prefix(job: JobId, kind: CkptKind) -> String {
    format!("ckpt/{job}/{}/", kind.dir())
}

/// Directory prefix of one rank-cell's checkpoint (shard objects and the
/// metadata sidecar live under it).
pub fn checkpoint_prefix(
    job: JobId,
    kind: CkptKind,
    iteration: u64,
    stage: usize,
    part: usize,
    dp: usize,
) -> String {
    format!(
        "ckpt/{job}/{}/it{iteration:010}/s{stage}p{part}/dp{dp}",
        kind.dir()
    )
}

/// Path of one checkpoint shard object.
#[allow(clippy::too_many_arguments)]
pub fn shard_path(
    job: JobId,
    kind: CkptKind,
    iteration: u64,
    stage: usize,
    part: usize,
    dp: usize,
    index: u32,
) -> String {
    format!(
        "{}/shard{index:05}",
        checkpoint_prefix(job, kind, iteration, stage, part, dp)
    )
}

/// Path of a checkpoint metadata sidecar.
pub fn meta_path(
    job: JobId,
    kind: CkptKind,
    iteration: u64,
    stage: usize,
    part: usize,
    dp: usize,
) -> String {
    format!(
        "{}/meta",
        checkpoint_prefix(job, kind, iteration, stage, part, dp)
    )
}

/// Parses a path under `ckpt/{job}/{kind}/` into
/// `(iteration, cell, dp, leaf)`; `None` for foreign paths.
fn parse_rel_path(rest: &str) -> Option<(u64, &str, usize, &str)> {
    let mut parts = rest.split('/');
    let (it, cell, dp_s, leaf) = (parts.next()?, parts.next()?, parts.next()?, parts.next()?);
    if parts.next().is_some() {
        return None;
    }
    let iteration = it.strip_prefix("it")?.parse::<u64>().ok()?;
    let dp = dp_s.strip_prefix("dp")?.parse::<usize>().ok()?;
    Some((iteration, cell, dp, leaf))
}

/// Writes a rank's checkpoint with default sharding. Kept as the
/// one-call entry point for callers that don't tune the pipeline.
#[allow(clippy::too_many_arguments)]
pub fn write_checkpoint<S: StorageBackend + ?Sized>(
    store: &S,
    job: JobId,
    kind: CkptKind,
    rank: RankId,
    stage: usize,
    part: usize,
    dp: usize,
    state: &TrainState,
) -> SimResult<()> {
    write_checkpoint_with(
        store,
        job,
        kind,
        rank,
        stage,
        part,
        dp,
        state,
        &ShardConfig::default(),
    )
}

/// The staged write of one rank-cell checkpoint: the encoded logical
/// stream, its zero-copy shard slices, and the resolved delta base.
/// Both persistence paths are built on it — the blocking worker-pool
/// path ([`write_checkpoint_with`]) and the write-behind pipeline
/// ([`crate::pipeline`]) — so shard encoding, delta policy, and the
/// chain cap live in exactly one place.
pub struct ShardPlan {
    /// Target checkpoint identity.
    pub job: JobId,
    /// Checkpoint flavor.
    pub kind: CkptKind,
    /// Writing rank.
    pub rank: RankId,
    /// Pipeline stage of the cell.
    pub stage: usize,
    /// Tensor partition of the cell.
    pub part: usize,
    /// Data-parallel replica index.
    pub dp: usize,
    /// Iteration being persisted.
    pub iteration: u64,
    /// Logical checkpoint size (cost accounting on restore).
    pub logical_bytes: u64,
    /// Shard boundary size, bytes.
    pub shard_bytes: usize,
    /// The encoded logical stream (shards are slices of it — the
    /// `Arc`-backed buffer is shared, never copied, all the way into
    /// the storage backend).
    pub stream: Bytes,
    /// Per-shard zero-copy slices of `stream`.
    pub slices: Vec<Bytes>,
    /// Delta base sidecar, when reuse is allowed and layout-compatible.
    pub base: Option<CheckpointMeta>,
}

impl ShardPlan {
    /// Stages a checkpoint write: encodes the logical stream once,
    /// slices it at `shard_bytes` boundaries, and resolves the delta
    /// base (enforcing [`ShardConfig::max_delta_chain`] — a base whose
    /// consecutive-delta run is exhausted is discarded, forcing this
    /// write to be full so old directories become collectable).
    #[allow(clippy::too_many_arguments)]
    pub fn stage<S: StorageBackend + ?Sized>(
        store: &S,
        job: JobId,
        kind: CkptKind,
        rank: RankId,
        stage: usize,
        part: usize,
        dp: usize,
        state: &TrainState,
        cfg: &ShardConfig,
    ) -> ShardPlan {
        Self::stage_cached(store, job, kind, rank, stage, part, dp, state, cfg, None)
    }

    /// [`Self::stage`] with a writer-side [`MetaCache`]: a cache hit
    /// resolves the delta base with one targeted sidecar `get` instead
    /// of a full `store.list` keyspace walk. Misses (cold cache, sidecar
    /// not yet durable, lost put) fall back to the scan, so behavior is
    /// identical to the uncached path — only the list traffic differs.
    #[allow(clippy::too_many_arguments)]
    pub fn stage_cached<S: StorageBackend + ?Sized>(
        store: &S,
        job: JobId,
        kind: CkptKind,
        rank: RankId,
        stage: usize,
        part: usize,
        dp: usize,
        state: &TrainState,
        cfg: &ShardConfig,
        cache: Option<&MetaCache>,
    ) -> ShardPlan {
        let shard_bytes = cfg.shard_bytes.max(1);
        // Encode the logical stream once; shards are zero-copy slices of
        // it. Pre-sizing to the exact encoded length avoids growing a
        // multi-hundred-MiB buffer through a doubling realloc chain.
        let mut staged = BytesMut::with_capacity(state.encoded_len());
        state.encode(&mut staged);
        let stream = staged.freeze();
        let n = stream.len().div_ceil(shard_bytes).max(1);
        let mut slices = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i * shard_bytes;
            let hi = ((i + 1) * shard_bytes).min(stream.len());
            slices.push(stream.slice(lo..hi));
        }

        // Delta base: this cell+replica's newest prior sidecar with an
        // identical shard layout. Only the sidecar is consulted — if a
        // base object later turns out torn or missing, the *read* path
        // rejects that shard by index and assembly falls back, exactly
        // as for any other incomplete checkpoint.
        let base = if cfg.delta && cfg.max_delta_chain > 0 {
            cache
                .and_then(|c| c.newest_before(job, kind, state.iteration, stage, part, dp))
                // A remembered iteration is only a *candidate*: its
                // sidecar may still be queued behind the write-behind
                // pipeline or silently lost by the backend. The targeted
                // read confirms durability; failure falls to the scan.
                .and_then(|it| read_meta(store, job, kind, it, stage, part, dp).ok())
                .or_else(|| latest_meta_before(store, job, kind, state.iteration, stage, part, dp))
                .filter(|m| m.shard_bytes == shard_bytes as u64 && m.shards.len() == n)
                // Chain cap: extending this base would make the run
                // `base.delta_depth + 1` long; past the cap, write full.
                .filter(|m| m.delta_depth < cfg.max_delta_chain)
        } else {
            None
        };

        ShardPlan {
            job,
            kind,
            rank,
            stage,
            part,
            dp,
            iteration: state.iteration,
            logical_bytes: state.logical_bytes,
            shard_bytes,
            stream,
            slices,
            base,
        }
    }

    /// Number of shards in the plan.
    pub fn n_shards(&self) -> usize {
        self.slices.len()
    }

    /// CRCs shard `i` and decides reuse-vs-upload: returns the shard's
    /// sidecar record plus the payload to persist (`None` when the bytes
    /// already live in the base iteration's directory). This is the
    /// CPU-bound half of the pipeline; the returned payload is an
    /// `Arc`-backed slice of the staged stream — handing it to an
    /// uploader costs a refcount bump, not a copy.
    pub fn resolve_shard(&self, i: usize) -> (ShardMeta, Option<Bytes>) {
        let payload = &self.slices[i];
        let crc = simcore::codec::crc64(payload);
        let reused = self.base.as_ref().and_then(|b| {
            let bs = b.shards.get(i)?;
            (bs.len == payload.len() as u64 && bs.crc == crc)
                .then(|| bs.base_iteration.unwrap_or(b.iteration))
        });
        let meta = ShardMeta {
            index: i as u32,
            len: payload.len() as u64,
            crc,
            base_iteration: reused,
        };
        let upload = reused.is_none().then(|| payload.clone());
        (meta, upload)
    }

    /// Store path of shard `i`.
    pub fn shard_path(&self, i: usize) -> String {
        shard_path(
            self.job,
            self.kind,
            self.iteration,
            self.stage,
            self.part,
            self.dp,
            i as u32,
        )
    }

    /// Store path of the metadata sidecar.
    pub fn meta_path(&self) -> String {
        meta_path(
            self.job,
            self.kind,
            self.iteration,
            self.stage,
            self.part,
            self.dp,
        )
    }

    /// Builds the completion sidecar from the resolved shard records
    /// (index order). `delta_depth` extends the base's run only if any
    /// shard actually reused it.
    pub fn finish_meta(&self, shards: Vec<ShardMeta>) -> CheckpointMeta {
        let any_reused = shards.iter().any(|s| s.base_iteration.is_some());
        CheckpointMeta {
            iteration: self.iteration,
            rank: self.rank.0,
            payload_crc: shard_set_crc(&shards),
            payload_len: self.stream.len() as u64,
            logical_bytes: self.logical_bytes,
            shard_bytes: self.shard_bytes as u64,
            delta_depth: if any_reused {
                self.base.as_ref().map(|b| b.delta_depth + 1).unwrap_or(0)
            } else {
                0
            },
            shards,
        }
    }
}

/// Writes a rank's checkpoint: shard objects first (fanned out across a
/// bounded worker pool), then the metadata sidecar — the completion
/// marker. The caller charges the write cost to the rank's clock.
///
/// With `cfg.delta`, shards bit-identical to this cell's most recent
/// prior checkpoint (same `shard_bytes`, same shard count) are not
/// re-written; the sidecar records where the bytes already live.
#[allow(clippy::too_many_arguments)]
pub fn write_checkpoint_with<S: StorageBackend + ?Sized>(
    store: &S,
    job: JobId,
    kind: CkptKind,
    rank: RankId,
    stage: usize,
    part: usize,
    dp: usize,
    state: &TrainState,
    cfg: &ShardConfig,
) -> SimResult<()> {
    let plan = ShardPlan::stage(store, job, kind, rank, stage, part, dp, state, cfg);
    write_plan(store, &plan, cfg.workers)
}

/// Persists an already-staged [`ShardPlan`]: shard objects first (fanned
/// out across a bounded worker pool), then the metadata sidecar. Split
/// out of [`write_checkpoint_with`] so callers that stage through a
/// [`MetaCache`] (the coordinator's blocking path) share the pool body.
pub fn write_plan<S: StorageBackend + ?Sized>(
    store: &S,
    plan: &ShardPlan,
    workers: usize,
) -> SimResult<()> {
    let n = plan.n_shards();

    // Bounded worker pool ([`simcore::pool::fan_out`]): each worker CRCs
    // its shard, decides reuse-vs-put, and records the resulting
    // ShardMeta into an index-addressed slot.
    let results: Mutex<Vec<Option<SimResult<ShardMeta>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    simcore::pool::fan_out(n, workers.min(n), "ckpt-shard", |i| {
        let (meta, upload) = plan.resolve_shard(i);
        let res = match upload {
            None => Ok(meta),
            Some(payload) => store.put(&plan.shard_path(i), payload).map(|()| meta),
        };
        results.lock()[i] = Some(res);
    });

    let mut shards = Vec::with_capacity(n);
    for (i, slot) in results.into_inner().into_iter().enumerate() {
        match slot {
            Some(Ok(m)) => shards.push(m),
            Some(Err(e)) => return Err(e),
            None => {
                return Err(SimError::Storage(format!(
                    "shard {i}: no worker processed it"
                )))
            }
        }
    }
    let meta = plan.finish_meta(shards);
    store.put(&plan.meta_path(), encode_framed(&meta))?;
    Ok(())
}

/// Reads and validates a checkpoint's metadata sidecar only (no shard
/// I/O). Used by the delta writer and by benchmarks measuring hit-rates.
pub fn read_meta<S: StorageBackend + ?Sized>(
    store: &S,
    job: JobId,
    kind: CkptKind,
    iteration: u64,
    stage: usize,
    part: usize,
    dp: usize,
) -> SimResult<CheckpointMeta> {
    let mpath = meta_path(job, kind, iteration, stage, part, dp);
    decode_framed(&store.get(&mpath)?)
        .map_err(|e| SimError::CorruptCheckpoint(format!("{mpath}: {e}")))
}

/// Newest prior iteration (strictly before `before`) with a decodable
/// sidecar for this cell+replica; the delta writer's base.
fn latest_meta_before<S: StorageBackend + ?Sized>(
    store: &S,
    job: JobId,
    kind: CkptKind,
    before: u64,
    stage: usize,
    part: usize,
    dp: usize,
) -> Option<CheckpointMeta> {
    let prefix = format!("ckpt/{job}/{}/", kind.dir());
    let cell = format!("s{stage}p{part}");
    let mut best: Option<u64> = None;
    for path in store.list(&prefix) {
        let Some(rest) = path.strip_prefix(&prefix) else {
            continue;
        };
        let Some((iteration, c, d, leaf)) = parse_rel_path(rest) else {
            continue;
        };
        if leaf != "meta" || c != cell || d != dp || iteration >= before {
            continue;
        }
        if best.is_none_or(|b| iteration > b) {
            best = Some(iteration);
        }
    }
    read_meta(store, job, kind, best?, stage, part, dp).ok()
}

/// Writer-side memo of the newest checkpoint iteration per cell+replica.
///
/// [`latest_meta_before`] answers "what is this cell's newest prior
/// sidecar?" with a full `store.list` of the job's keyspace — paths put
/// the iteration *before* the cell, so no prefix can narrow the walk,
/// and the cost grows with job age and is paid on **every** delta write.
/// But the long-lived writer (the coordinator's [`JobSession`]) already
/// knows the answer: it is the iteration it last wrote. This cache
/// remembers exactly that — the newest-iteration *number*, never the
/// sidecar bytes — and [`ShardPlan::stage_cached`] turns it into one
/// targeted sidecar `get`, validated against the store before use, so a
/// stale or never-landed entry degrades to the scan instead of to a
/// wrong delta base.
///
/// [`JobSession`]: ../../coordinator/struct.JobSession.html
/// One writer cell: `(job, kind, stage, part, dp)`.
type CellKey = (u32, CkptKind, usize, usize, usize);

#[derive(Debug, Default)]
pub struct MetaCache {
    /// Cell → newest iteration recorded.
    cells: Mutex<BTreeMap<CellKey, u64>>,
}

impl MetaCache {
    /// An empty cache.
    pub fn new() -> MetaCache {
        MetaCache::default()
    }

    /// Records `iteration` as the cell's newest write (keeps the max, so
    /// out-of-order recording — e.g. concurrent ranks of one dp group —
    /// cannot move the answer backwards).
    pub fn record(
        &self,
        job: JobId,
        kind: CkptKind,
        stage: usize,
        part: usize,
        dp: usize,
        iteration: u64,
    ) {
        let mut cells = self.cells.lock();
        let slot = cells.entry((job.0, kind, stage, part, dp)).or_insert(0);
        *slot = (*slot).max(iteration);
    }

    /// The newest recorded iteration strictly before `before`, if any.
    fn newest_before(
        &self,
        job: JobId,
        kind: CkptKind,
        before: u64,
        stage: usize,
        part: usize,
        dp: usize,
    ) -> Option<u64> {
        self.cells
            .lock()
            .get(&(job.0, kind, stage, part, dp))
            .copied()
            .filter(|it| *it < before)
    }
}

/// Reads and fully validates one checkpoint (metadata present, every
/// shard present with matching length and CRC — resolving delta
/// references — and the reassembled payload decodes).
///
/// Shard failures are collected, not short-circuited: the error names
/// every bad shard *by index* (`shard 3: checksum mismatch; shard 7:
/// truncated …`) while healthy siblings remain validated, so callers and
/// operators can see exactly which objects are damaged.
pub fn read_checkpoint<S: StorageBackend + ?Sized>(
    store: &S,
    job: JobId,
    kind: CkptKind,
    iteration: u64,
    stage: usize,
    part: usize,
    dp: usize,
) -> SimResult<(TrainState, CheckpointMeta)> {
    let meta = read_meta(store, job, kind, iteration, stage, part, dp)?;
    let prefix = checkpoint_prefix(job, kind, iteration, stage, part, dp);
    precheck_meta(&meta, &prefix)?;
    let mut bad: Vec<String> = Vec::new();
    let mut stream = BytesMut::with_capacity(meta.payload_len as usize);
    for (i, sm) in meta.shards.iter().enumerate() {
        if sm.index as usize != i {
            bad.push(format!("shard {i}: sidecar index out of order"));
            continue;
        }
        let holder = sm.base_iteration.unwrap_or(meta.iteration);
        let path = shard_path(job, kind, holder, stage, part, dp, sm.index);
        match verify_shard(i, sm, holder, store.get(&path)) {
            Ok(obj) => stream.put_slice(&obj),
            Err(blame) => bad.push(blame),
        }
    }
    finish_restore(&prefix, meta, stream, bad)
}

/// Sidecar-level validation shared by the serial and parallel readers:
/// a sidecar must list shards, and the shard *set* must match its
/// binding CRC before any shard object is fetched.
pub(crate) fn precheck_meta(meta: &CheckpointMeta, prefix: &str) -> SimResult<()> {
    if meta.shards.is_empty() {
        return Err(SimError::CorruptCheckpoint(format!(
            "{prefix}: sidecar lists no shards"
        )));
    }
    if shard_set_crc(&meta.shards) != meta.payload_crc {
        return Err(SimError::CorruptCheckpoint(format!(
            "{prefix}: shard-set checksum mismatch in sidecar"
        )));
    }
    Ok(())
}

/// Validates one fetched shard against its sidecar record, returning the
/// payload or the by-index blame string. One function serves both read
/// paths so the parallel plane's error contract is bit-identical to the
/// serial one by construction, not by convention.
pub(crate) fn verify_shard(
    i: usize,
    sm: &ShardMeta,
    holder: u64,
    fetched: SimResult<Bytes>,
) -> Result<Bytes, String> {
    match fetched {
        Err(_) => Err(if sm.base_iteration.is_some() {
            format!("shard {i}: missing delta base object (it{holder})")
        } else {
            format!("shard {i}: missing object")
        }),
        Ok(obj) => {
            if obj.len() as u64 != sm.len {
                Err(format!(
                    "shard {i}: truncated ({} of {} bytes)",
                    obj.len(),
                    sm.len
                ))
            } else if simcore::codec::crc64(&obj) != sm.crc {
                Err(format!("shard {i}: checksum mismatch"))
            } else {
                Ok(obj)
            }
        }
    }
}

/// Final assembly checks shared by both readers: aggregate the per-shard
/// blame, then verify reassembled length, decode, trailing bytes, and
/// the sidecar-vs-payload iteration binding.
pub(crate) fn finish_restore(
    prefix: &str,
    meta: CheckpointMeta,
    stream: BytesMut,
    bad: Vec<String>,
) -> SimResult<(TrainState, CheckpointMeta)> {
    if !bad.is_empty() {
        return Err(SimError::CorruptCheckpoint(format!(
            "{prefix}: {} of {} shards invalid [{}]",
            bad.len(),
            meta.shards.len(),
            bad.join("; ")
        )));
    }
    if stream.len() as u64 != meta.payload_len {
        return Err(SimError::CorruptCheckpoint(format!(
            "{prefix}: reassembled {} of {} bytes",
            stream.len(),
            meta.payload_len
        )));
    }
    let mut buf = stream.freeze();
    let state = TrainState::decode(&mut buf)
        .map_err(|e| SimError::CorruptCheckpoint(format!("{prefix}: {e}")))?;
    if !buf.is_empty() {
        return Err(SimError::CorruptCheckpoint(format!(
            "{prefix}: {} trailing bytes after decode",
            buf.len()
        )));
    }
    if state.iteration != meta.iteration {
        return Err(SimError::CorruptCheckpoint(format!(
            "{prefix}: iteration mismatch ({} vs {})",
            state.iteration, meta.iteration
        )));
    }
    Ok((state, meta))
}

/// A resolved checkpoint choice for one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellChoice {
    /// Iteration chosen.
    pub iteration: u64,
    /// Which data-parallel replica's file to read.
    pub dp: usize,
    /// Checkpoint flavor found.
    pub kind: CkptKind,
}

fn complete_iterations_for_cell<S: StorageBackend + ?Sized>(
    store: &S,
    job: JobId,
    kind: CkptKind,
    layout: &ParallelLayout,
    stage: usize,
    part: usize,
) -> BTreeMap<u64, usize> {
    // iteration → a dp replica with a *valid* checkpoint.
    let mut out = BTreeMap::new();
    let prefix = format!("ckpt/{job}/{}/", kind.dir());
    let cell = format!("s{stage}p{part}");
    for path in store.list(&prefix) {
        let Some(rest) = path.strip_prefix(&prefix) else {
            continue;
        };
        let Some((iteration, c, dp, leaf)) = parse_rel_path(rest) else {
            continue;
        };
        if leaf != "meta" || c != cell || dp >= layout.dp {
            continue;
        }
        if out.contains_key(&iteration) {
            continue;
        }
        // Validate before accepting: a torn write must not count. The
        // parallel restore plane fetches the candidate's shards — on a
        // latency-bound backend, candidate validation is the dominant
        // assemble cost and overlaps the same way a real restore does.
        let valid = crate::restore::read_checkpoint_parallel(
            store,
            job,
            kind,
            iteration,
            stage,
            part,
            dp,
            &crate::restore::RestoreConfig::default(),
        )
        .is_ok();
        if valid {
            out.insert(iteration, dp);
        }
    }
    out
}

/// Resolves, for every (stage, partition) cell, the newest checkpoint
/// iteration available for **all** cells — discarding corrupt or
/// incomplete files — and which replica to read it from. Searches both
/// JIT and periodic checkpoints and takes the newest (the combined
/// JIT + PC mode of §6.3).
pub fn assemble<S: StorageBackend + ?Sized>(
    store: &S,
    job: JobId,
    layout: &ParallelLayout,
) -> SimResult<BTreeMap<(usize, usize), CellChoice>> {
    let cells = layout.cells();
    // For each cell, map iteration → (dp, kind), preferring JIT files
    // (either is valid; JIT files are what failure recovery wrote).
    let mut per_cell: Vec<BTreeMap<u64, (usize, CkptKind)>> = Vec::with_capacity(cells.len());
    for &(stage, part) in &cells {
        let mut m: BTreeMap<u64, (usize, CkptKind)> = BTreeMap::new();
        for kind in [CkptKind::Jit, CkptKind::Periodic] {
            for (it, dp) in complete_iterations_for_cell(store, job, kind, layout, stage, part) {
                m.entry(it).or_insert((dp, kind));
            }
        }
        per_cell.push(m);
    }
    // Intersect iteration sets across cells; take the max.
    let mut common: Option<Vec<u64>> = None;
    for m in &per_cell {
        let its: Vec<u64> = m.keys().copied().collect();
        common = Some(match common {
            None => its,
            Some(prev) => prev.into_iter().filter(|i| its.contains(i)).collect(),
        });
    }
    let best = common
        .unwrap_or_default()
        .into_iter()
        .max()
        .ok_or_else(|| {
            SimError::NoCheckpointAvailable(format!(
                "no iteration has a complete checkpoint for every cell of {job}"
            ))
        })?;
    let mut out = BTreeMap::new();
    for (idx, &(stage, part)) in cells.iter().enumerate() {
        let (dp, kind) = per_cell[idx][&best];
        out.insert(
            (stage, part),
            CellChoice {
                iteration: best,
                dp,
                kind,
            },
        );
    }
    Ok(out)
}

/// §3.3's `jit_get_checkpoint_path`: the checkpoint directory a restoring
/// rank should load — a complete checkpoint from any data-parallel
/// replica of its own cell, at an iteration consistent across the whole
/// job. Shard objects and the sidecar live under the returned prefix.
pub fn jit_get_checkpoint_path<S: StorageBackend + ?Sized>(
    store: &S,
    job: JobId,
    layout: &ParallelLayout,
    rank: RankId,
) -> SimResult<String> {
    let coord = layout.coord(rank);
    let plan = assemble(store, job, layout)?;
    let choice = plan[&(coord.stage, coord.part)];
    Ok(checkpoint_prefix(
        job,
        choice.kind,
        choice.iteration,
        coord.stage,
        coord.part,
        choice.dp,
    ))
}

/// Loads the resolved checkpoint for `rank` (validated).
pub fn load_for_rank<S: StorageBackend + ?Sized>(
    store: &S,
    job: JobId,
    layout: &ParallelLayout,
    rank: RankId,
) -> SimResult<(TrainState, CheckpointMeta)> {
    let coord = layout.coord(rank);
    let plan = assemble(store, job, layout)?;
    let choice = plan[&(coord.stage, coord.part)];
    read_checkpoint(
        store,
        job,
        choice.kind,
        choice.iteration,
        coord.stage,
        coord.part,
        choice.dp,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::SharedStore;
    use simgpu::BufferTag;

    fn state(it: u64, v: f32) -> TrainState {
        TrainState {
            iteration: it,
            opt_t: it as u32,
            buffers: vec![("w".into(), BufferTag::Param, vec![v; 4])],
            logical_bytes: 16,
        }
    }

    #[test]
    fn default_workers_oversubscribe_the_cores_within_bounds() {
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let d = ShardConfig::default();
        assert_eq!(d.workers, (2 * avail).clamp(4, 16), "2×cores in [4, 16]");
        assert!(d.workers >= 4, "blocking puts want a pool even on 1 core");
    }

    #[test]
    fn auto_workers_never_exceed_the_shard_count() {
        assert_eq!(auto_shard_workers(1), 1);
        assert_eq!(auto_shard_workers(2), 2);
        assert_eq!(auto_shard_workers(0), 1, "degenerate layout still runs");
        let many = auto_shard_workers(1 << 20);
        assert_eq!(many, default_shard_workers());
        assert!(many <= 16);
    }

    /// A state big enough to split into many shards at `SMALL.shard_bytes`.
    fn big_state(it: u64, v: f32) -> TrainState {
        TrainState {
            iteration: it,
            opt_t: it as u32,
            buffers: vec![
                ("w".into(), BufferTag::Param, vec![v; 64]),
                ("m".into(), BufferTag::OptimState, vec![v * 2.0; 64]),
            ],
            logical_bytes: 512,
        }
    }

    /// Small shards + a real pool so tests exercise the multi-shard path.
    const SMALL: ShardConfig = ShardConfig {
        shard_bytes: 64,
        workers: 3,
        delta: true,
        max_delta_chain: DEFAULT_MAX_DELTA_CHAIN,
    };

    fn job() -> JobId {
        JobId(0)
    }

    #[test]
    fn write_read_round_trip() -> SimResult<()> {
        let store = SharedStore::new();
        let s = state(7, 1.5);
        write_checkpoint(&store, job(), CkptKind::Jit, RankId(0), 0, 0, 0, &s)?;
        let (back, meta) = read_checkpoint(&store, job(), CkptKind::Jit, 7, 0, 0, 0)?;
        assert_eq!(back, s);
        assert_eq!(meta.iteration, 7);
        assert_eq!(meta.logical_bytes, 16);
        Ok(())
    }

    #[test]
    fn multi_shard_round_trip() -> SimResult<()> {
        let store = SharedStore::new();
        let s = big_state(9, 0.5);
        write_checkpoint_with(&store, job(), CkptKind::Jit, RankId(0), 0, 0, 0, &s, &SMALL)?;
        let meta = read_meta(&store, job(), CkptKind::Jit, 9, 0, 0, 0)?;
        assert!(
            meta.shards.len() > 4,
            "want many shards: {}",
            meta.shards.len()
        );
        // One store object per shard plus the sidecar.
        let objs = store.list(checkpoint_prefix(job(), CkptKind::Jit, 9, 0, 0, 0));
        assert_eq!(objs.len(), meta.shards.len() + 1);
        let (back, _) = read_checkpoint(&store, job(), CkptKind::Jit, 9, 0, 0, 0)?;
        assert_eq!(back, s);
        Ok(())
    }

    #[test]
    fn delta_write_skips_unchanged_shards() -> SimResult<()> {
        let store = SharedStore::new();
        let mut s = big_state(9, 0.5);
        write_checkpoint_with(&store, job(), CkptKind::Jit, RankId(0), 0, 0, 0, &s, &SMALL)?;
        // Next iteration: only the optimizer buffer's first element (and
        // the header) change; layout and sizes stay identical.
        s.iteration = 10;
        s.opt_t = 10;
        s.buffers[1].2[0] = 123.0;
        write_checkpoint_with(&store, job(), CkptKind::Jit, RankId(0), 0, 0, 0, &s, &SMALL)?;
        let meta = read_meta(&store, job(), CkptKind::Jit, 10, 0, 0, 0)?;
        let reused = meta
            .shards
            .iter()
            .filter(|m| m.base_iteration == Some(9))
            .count();
        assert!(
            reused * 2 > meta.shards.len(),
            "most shards should be delta refs: {reused}/{}",
            meta.shards.len()
        );
        // The delta checkpoint's directory holds only the fresh shards.
        let objs = store.list(checkpoint_prefix(job(), CkptKind::Jit, 10, 0, 0, 0));
        assert_eq!(objs.len(), meta.shards.len() - reused + 1);
        // And it reads back whole, refs resolved.
        let (back, _) = read_checkpoint(&store, job(), CkptKind::Jit, 10, 0, 0, 0)?;
        assert_eq!(back, s);
        Ok(())
    }

    #[test]
    fn delta_refs_collapse_transitively() -> SimResult<()> {
        // it 9 → 10 → 11 with no payload change beyond the header: it 11's
        // refs must point straight at it 9 (the physical writer), never at
        // it 10's refs.
        let store = SharedStore::new();
        let mut s = big_state(9, 0.5);
        for it in 9..=11 {
            s.iteration = it;
            write_checkpoint_with(&store, job(), CkptKind::Jit, RankId(0), 0, 0, 0, &s, &SMALL)?;
        }
        let meta = read_meta(&store, job(), CkptKind::Jit, 11, 0, 0, 0)?;
        assert!(meta
            .shards
            .iter()
            .all(|m| m.base_iteration.is_none() || m.base_iteration == Some(9)));
        let (back, _) = read_checkpoint(&store, job(), CkptKind::Jit, 11, 0, 0, 0)?;
        assert_eq!(back, s);
        Ok(())
    }

    #[test]
    fn shard_count_change_disables_delta() -> SimResult<()> {
        let store = SharedStore::new();
        let mut s = big_state(9, 0.5);
        write_checkpoint_with(&store, job(), CkptKind::Jit, RankId(0), 0, 0, 0, &s, &SMALL)?;
        // Grow a buffer: the stream length (and shard count) changes, so
        // no shard may be reused even though early bytes coincide.
        s.iteration = 10;
        s.buffers[1].2.extend_from_slice(&[1.0; 64]);
        write_checkpoint_with(&store, job(), CkptKind::Jit, RankId(0), 0, 0, 0, &s, &SMALL)?;
        let meta = read_meta(&store, job(), CkptKind::Jit, 10, 0, 0, 0)?;
        assert!(meta.shards.iter().all(|m| m.base_iteration.is_none()));
        let (back, _) = read_checkpoint(&store, job(), CkptKind::Jit, 10, 0, 0, 0)?;
        assert_eq!(back, s);
        Ok(())
    }

    #[test]
    fn missing_delta_base_is_reported_and_skipped() -> SimResult<()> {
        let store = SharedStore::new();
        let layout = ParallelLayout::data_parallel(1);
        let mut s = big_state(9, 0.5);
        write_checkpoint_with(&store, job(), CkptKind::Jit, RankId(0), 0, 0, 0, &s, &SMALL)?;
        s.iteration = 10;
        write_checkpoint_with(&store, job(), CkptKind::Jit, RankId(0), 0, 0, 0, &s, &SMALL)?;
        // Delete one base shard that it 10 references.
        let meta = read_meta(&store, job(), CkptKind::Jit, 10, 0, 0, 0)?;
        let referenced = meta
            .shards
            .iter()
            .find(|m| m.base_iteration == Some(9))
            .copied();
        let Some(referenced) = referenced else {
            return Err(SimError::Protocol("expected a delta ref".into()));
        };
        store.delete(shard_path(
            job(),
            CkptKind::Jit,
            9,
            0,
            0,
            0,
            referenced.index,
        ));
        let err = read_checkpoint(&store, job(), CkptKind::Jit, 10, 0, 0, 0).unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains(&format!("shard {}: missing delta base", referenced.index)),
            "{msg}"
        );
        // Assembly falls back: it 9 is also damaged now (it physically
        // held the shard), so the job reports no usable checkpoint.
        assert!(assemble(&store, job(), &layout).is_err());
        Ok(())
    }

    #[test]
    fn corrupt_single_shard_reported_by_index_without_blaming_siblings() -> SimResult<()> {
        let store = SharedStore::new();
        let s = big_state(9, 0.5);
        write_checkpoint_with(&store, job(), CkptKind::Jit, RankId(0), 0, 0, 0, &s, &SMALL)?;
        let meta = read_meta(&store, job(), CkptKind::Jit, 9, 0, 0, 0)?;
        assert!(meta.shards.len() > 3);
        store.corrupt(shard_path(job(), CkptKind::Jit, 9, 0, 0, 0, 2))?;
        let err = read_checkpoint(&store, job(), CkptKind::Jit, 9, 0, 0, 0).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("shard 2: checksum mismatch"), "{msg}");
        assert!(
            msg.contains(&format!("1 of {} shards invalid", meta.shards.len())),
            "siblings must stay valid: {msg}"
        );
        Ok(())
    }

    #[test]
    fn targeted_fault_tears_one_shard() -> SimResult<()> {
        let store = SharedStore::new();
        let s = big_state(9, 0.5);
        // Arm a truncation aimed at exactly shard 3 of this checkpoint.
        store.fail_next_write_matching(shard_path(job(), CkptKind::Jit, 9, 0, 0, 0, 3), 0.5);
        write_checkpoint_with(&store, job(), CkptKind::Jit, RankId(0), 0, 0, 0, &s, &SMALL)?;
        let err = read_checkpoint(&store, job(), CkptKind::Jit, 9, 0, 0, 0).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("shard 3: truncated"), "{msg}");
        Ok(())
    }

    #[test]
    fn torn_write_is_rejected_and_skipped() -> SimResult<()> {
        let store = SharedStore::new();
        let layout = ParallelLayout::data_parallel(2);
        // Replica 0 writes a good checkpoint at it 5.
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &state(5, 1.0),
        )?;
        // Replica 1 dies mid-write at it 6: payload truncated, then (to
        // be adversarial) the metadata still lands.
        store.fail_next_write(0.5);
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(1),
            0,
            0,
            1,
            &state(6, 2.0),
        )?;
        // Assembly must fall back to iteration 5 from replica 0.
        let plan = assemble(&store, job(), &layout)?;
        let choice = plan[&(0, 0)];
        assert_eq!(choice.iteration, 5);
        assert_eq!(choice.dp, 0);
        Ok(())
    }

    #[test]
    fn corrupted_payload_is_rejected() -> SimResult<()> {
        let store = SharedStore::new();
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &state(5, 1.0),
        )?;
        store.corrupt(shard_path(job(), CkptKind::Jit, 5, 0, 0, 0, 0))?;
        let err = read_checkpoint(&store, job(), CkptKind::Jit, 5, 0, 0, 0).unwrap_err();
        assert!(matches!(err, SimError::CorruptCheckpoint(_)));
        Ok(())
    }

    #[test]
    fn missing_meta_means_incomplete() -> SimResult<()> {
        let store = SharedStore::new();
        let layout = ParallelLayout::data_parallel(1);
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &state(5, 1.0),
        )?;
        store.delete(meta_path(job(), CkptKind::Jit, 5, 0, 0, 0));
        assert!(assemble(&store, job(), &layout).is_err());
        Ok(())
    }

    #[test]
    fn i_vs_i_plus_1_resolved_to_common_max() -> SimResult<()> {
        // §3.3: with pipeline stages, one cell may have saved i+1 while
        // another only has i; the job must resume from the newest
        // iteration complete for EVERY cell.
        let store = SharedStore::new();
        let layout = ParallelLayout::three_d(2, 2, 1);
        // Stage 0 has it 10 and 11; stage 1 only it 10.
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &state(10, 1.0),
        )?;
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &state(11, 1.1),
        )?;
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(1),
            1,
            0,
            0,
            &state(10, 2.0),
        )?;
        let plan = assemble(&store, job(), &layout)?;
        assert_eq!(plan[&(0, 0)].iteration, 10);
        assert_eq!(plan[&(1, 0)].iteration, 10);
        // Once stage 1 also has 11, assembly moves forward.
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(1),
            1,
            0,
            1,
            &state(11, 2.1),
        )?;
        let plan = assemble(&store, job(), &layout)?;
        assert_eq!(plan[&(0, 0)].iteration, 11);
        assert_eq!(plan[&(1, 0)].iteration, 11);
        assert_eq!(plan[&(1, 0)].dp, 1, "reads the replica that has it");
        Ok(())
    }

    #[test]
    fn jit_get_checkpoint_path_points_at_own_cell() -> SimResult<()> {
        let store = SharedStore::new();
        let layout = ParallelLayout::three_d(2, 2, 1);
        for (stage, part) in layout.cells() {
            write_checkpoint(
                &store,
                job(),
                CkptKind::Jit,
                RankId(0),
                stage,
                part,
                0,
                &state(3, 1.0),
            )?;
        }
        // Rank 3 in a 2dp×2pp layout: dp=1, stage=1.
        let p = jit_get_checkpoint_path(&store, job(), &layout, RankId(3))?;
        assert!(p.contains("s1p0"), "{p}");
        assert!(p.contains("it0000000003"), "{p}");
        Ok(())
    }

    #[test]
    fn combined_mode_prefers_newest_of_either_kind() -> SimResult<()> {
        let store = SharedStore::new();
        let layout = ParallelLayout::data_parallel(1);
        write_checkpoint(
            &store,
            job(),
            CkptKind::Periodic,
            RankId(0),
            0,
            0,
            0,
            &state(20, 1.0),
        )?;
        write_checkpoint(
            &store,
            job(),
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &state(25, 2.0),
        )?;
        let plan = assemble(&store, job(), &layout)?;
        assert_eq!(plan[&(0, 0)].iteration, 25);
        assert_eq!(plan[&(0, 0)].kind, CkptKind::Jit);
        // A newer periodic checkpoint wins in turn.
        write_checkpoint(
            &store,
            job(),
            CkptKind::Periodic,
            RankId(0),
            0,
            0,
            0,
            &state(30, 3.0),
        )?;
        let plan = assemble(&store, job(), &layout)?;
        assert_eq!(plan[&(0, 0)].kind, CkptKind::Periodic);
        assert_eq!(plan[&(0, 0)].iteration, 30);
        Ok(())
    }

    /// Boundary of the delta-chain cap: with `max_delta_chain = 3` and
    /// bit-identical state every iteration, depths run 0,1,2,3, then the
    /// write at the boundary is forced full (depth 0, no shard refs) and
    /// the run restarts — `read`/`assemble` cost stays bounded however
    /// old the job gets.
    #[test]
    fn delta_chain_cap_forces_full_write_at_boundary() -> SimResult<()> {
        let cfg = ShardConfig {
            max_delta_chain: 3,
            ..SMALL
        };
        let store = SharedStore::new();
        let mut depths = Vec::new();
        for it in 1..=6 {
            let mut s = big_state(1, 1.5);
            s.iteration = it; // same bytes, new iteration ⇒ fully reusable
            write_checkpoint_with(&store, job(), CkptKind::Jit, RankId(0), 0, 0, 0, &s, &cfg)?;
            depths.push(read_meta(&store, job(), CkptKind::Jit, it, 0, 0, 0)?.delta_depth);
        }
        assert_eq!(depths, vec![0, 1, 2, 3, 0, 1], "cap resets the run at 3");

        // The forced-full boundary write references nothing older.
        let full = read_meta(&store, job(), CkptKind::Jit, 5, 0, 0, 0)?;
        assert!(full.shards.iter().all(|s| s.base_iteration.is_none()));
        // The capped write still reads back bit-identically.
        let mut want = big_state(1, 1.5);
        want.iteration = 5;
        let (got, _) = read_checkpoint(&store, job(), CkptKind::Jit, 5, 0, 0, 0)?;
        assert_eq!(got, want);

        // `max_delta_chain: 0` disables delta entirely.
        let none = ShardConfig {
            max_delta_chain: 0,
            ..SMALL
        };
        let store = SharedStore::new();
        for it in 1..=2 {
            let mut s = big_state(1, 1.5);
            s.iteration = it;
            write_checkpoint_with(&store, job(), CkptKind::Jit, RankId(0), 0, 0, 0, &s, &none)?;
        }
        let m = read_meta(&store, job(), CkptKind::Jit, 2, 0, 0, 0)?;
        assert_eq!(m.delta_depth, 0);
        assert!(m.shards.iter().all(|s| s.base_iteration.is_none()));
        Ok(())
    }
}

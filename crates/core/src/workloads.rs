//! The experimental workload catalog (Table 2 of the paper), with the
//! calibration data needed to regenerate the evaluation tables.
//!
//! Each entry carries the paper's workload identity (parameter count, GPU
//! count, parallelism, framework, GPU generation) plus derived modelling
//! inputs: checkpoint bytes per parameter (mixed-precision Adam training
//! state ≈ 14 B/param), per-rank communicator counts (framework-
//! dependent: Megatron-DeepSpeed builds many specialized process groups,
//! HuggingFace DDP builds one), and a scaled-down functional
//! [`TrainConfig`] whose *logical* state size matches the paper-scale
//! model via phantom scaling.

use dltrain::{ModelConfig, OptimizerKind, TrainConfig};
use simcore::cost::GpuGeneration;
use simcore::layout::ParallelLayout;

/// Training framework used by a workload (affects communicator counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framework {
    /// Megatron-LM.
    Megatron,
    /// Megatron + DeepSpeed.
    MegatronDS,
    /// HuggingFace Trainer (plain DDP).
    HuggingFace,
    /// Plain PyTorch DDP.
    PyTorch,
    /// PyTorch FSDP with hybrid sharding.
    PyTorchFsdp,
}

impl Framework {
    /// Communicators each rank participates in, beyond the world group.
    ///
    /// Calibrated against Table 7: plain DDP frameworks bootstrap ~1
    /// group; Megatron-DeepSpeed builds data-, tensor-, pipeline-,
    /// embedding- and grad-norm groups (~8 per rank); 3D configurations
    /// roughly double that.
    pub fn comm_groups(self, layout: ParallelLayout) -> usize {
        let base = match self {
            Framework::HuggingFace | Framework::PyTorch => 1,
            Framework::Megatron => 4,
            Framework::MegatronDS => 8,
            Framework::PyTorchFsdp => 3,
        };
        let three_d_extra = if layout.pp > 1 || layout.tp > 1 { 7 } else { 0 };
        base + three_d_extra
    }
}

/// One evaluation workload (a Table 2 row).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Model name as in the paper.
    pub name: &'static str,
    /// Parameter count in billions.
    pub params_b: f64,
    /// Parallelism layout (world size = GPU count).
    pub layout: ParallelLayout,
    /// Framework.
    pub framework: Framework,
    /// GPU generation of the testbed.
    pub gpu: GpuGeneration,
    /// FSDP hybrid sharding (T5-3B row).
    pub fsdp: bool,
    /// Checkpoint bytes per parameter (params + optimizer state).
    pub bytes_per_param: f64,
    /// Minibatch time measured in the paper (seconds) — used by the
    /// analytical tables; the functional simulator produces its own.
    pub paper_minibatch: f64,
}

impl Workload {
    /// Total checkpointable state of the whole model, in bytes.
    pub fn total_state_bytes(&self) -> u64 {
        (self.params_b * 1e9 * self.bytes_per_param) as u64
    }

    /// Per-rank checkpoint size: the model state divided over pipeline
    /// stages and tensor partitions (data-parallel replicas each hold a
    /// full copy of their cell's shard).
    pub fn state_bytes_per_rank(&self) -> u64 {
        self.total_state_bytes() / (self.layout.pp as u64 * self.layout.tp as u64)
    }

    /// World size (GPU count).
    pub fn gpus(&self) -> usize {
        self.layout.world_size()
    }

    /// Communicators per rank (world + framework groups) — the recovery
    /// rendezvous multiplier of Table 7.
    pub fn comms_per_rank(&self) -> usize {
        1 + self.framework.comm_groups(self.layout)
    }

    /// A functional training configuration whose logical per-rank state
    /// size equals [`Workload::state_bytes_per_rank`] via phantom scaling,
    /// while actual payloads stay tiny.
    pub fn train_config(&self, seed: u64) -> TrainConfig {
        let model = ModelConfig {
            input_dim: 8,
            hidden: 16,
            blocks: self.layout.pp.max(1) * 2,
            classes: 4,
            phantom_scale: 1.0, // fixed up below
        };
        let mut cfg = TrainConfig {
            layout: self.layout,
            model,
            batch: 4,
            optimizer: OptimizerKind::adam(1e-3),
            seed,
            ranks_per_node: self.gpu.gpus_per_node(),
            fsdp: self.fsdp,
        };
        // Actual persistent bytes per rank for the tiny dims: params (one
        // stage, one partition) + Adam moments (2 extra slots).
        let d = cfg.model.input_dim;
        let tp = if self.fsdp { 1 } else { self.layout.tp };
        let h_local = cfg.model.hidden / tp;
        let bps = cfg.model.blocks / self.layout.pp;
        // A + bias_A + B shards plus the replicated LayerNorm γ/β.
        let block_elems = d * h_local + h_local + h_local * d + 2 * d;
        let head_elems = d * cfg.model.classes;
        let param_elems = bps * block_elems + head_elems;
        let slots = 1 + cfg.optimizer.state_slots(); // param + optim state
        let actual_bytes = (param_elems * 4 * slots) as f64;
        cfg.model.phantom_scale = self.state_bytes_per_rank() as f64 / actual_bytes;
        cfg
    }
}

/// The full Table 2 catalog.
pub fn catalog() -> Vec<Workload> {
    vec![
        Workload {
            name: "GPT2-S",
            params_b: 0.124,
            layout: ParallelLayout::data_parallel(4),
            framework: Framework::MegatronDS,
            gpu: GpuGeneration::A100_80G,
            fsdp: false,
            bytes_per_param: 14.0,
            paper_minibatch: 0.629,
        },
        Workload {
            name: "GPT2-S-3D",
            params_b: 0.124,
            layout: ParallelLayout::three_d(2, 2, 2),
            framework: Framework::MegatronDS,
            gpu: GpuGeneration::V100_32G,
            fsdp: false,
            bytes_per_param: 14.0,
            paper_minibatch: 0.209,
        },
        Workload {
            name: "GPT2-XL",
            params_b: 1.5,
            layout: ParallelLayout::three_d(2, 2, 2),
            framework: Framework::MegatronDS,
            gpu: GpuGeneration::V100_32G,
            fsdp: false,
            bytes_per_param: 14.0,
            paper_minibatch: 2.632,
        },
        Workload {
            name: "GPT2-8B",
            params_b: 8.3,
            layout: ParallelLayout::three_d(2, 4, 2),
            framework: Framework::MegatronDS,
            gpu: GpuGeneration::V100_32G,
            fsdp: false,
            bytes_per_param: 14.0,
            paper_minibatch: 2.953,
        },
        Workload {
            name: "GPT2-18B",
            params_b: 18.0,
            layout: ParallelLayout::three_d(2, 4, 4),
            framework: Framework::MegatronDS,
            gpu: GpuGeneration::V100_32G,
            fsdp: false,
            bytes_per_param: 14.0,
            paper_minibatch: 3.474,
        },
        Workload {
            name: "BERT-L-PT",
            params_b: 0.334,
            layout: ParallelLayout::data_parallel(8),
            framework: Framework::Megatron,
            gpu: GpuGeneration::V100_32G,
            fsdp: false,
            bytes_per_param: 14.0,
            paper_minibatch: 0.418,
        },
        Workload {
            name: "BERT-B-FT",
            params_b: 0.110,
            layout: ParallelLayout::data_parallel(8),
            framework: Framework::HuggingFace,
            gpu: GpuGeneration::V100_32G,
            fsdp: false,
            bytes_per_param: 14.0,
            paper_minibatch: 0.416,
        },
        Workload {
            name: "T5-3B",
            params_b: 3.0,
            layout: ParallelLayout::three_d(2, 1, 4),
            framework: Framework::PyTorchFsdp,
            gpu: GpuGeneration::A100_80G,
            fsdp: true,
            bytes_per_param: 14.0,
            paper_minibatch: 0.498,
        },
        Workload {
            name: "ViT",
            params_b: 0.632,
            layout: ParallelLayout::data_parallel(8),
            framework: Framework::PyTorch,
            gpu: GpuGeneration::V100_32G,
            fsdp: false,
            bytes_per_param: 14.0,
            paper_minibatch: 0.292,
        },
        Workload {
            name: "PyramidNet",
            params_b: 0.24,
            layout: ParallelLayout::data_parallel(4),
            framework: Framework::PyTorch,
            gpu: GpuGeneration::A100_80G,
            fsdp: false,
            bytes_per_param: 14.0,
            paper_minibatch: 0.315,
        },
    ]
}

/// Looks up a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    catalog().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table2_shape() {
        let c = catalog();
        assert_eq!(c.len(), 10);
        let gpt18 = by_name("GPT2-18B").unwrap();
        assert_eq!(gpt18.gpus(), 32);
        assert_eq!(gpt18.layout.label(), "2D-4P-4T");
        let bert = by_name("BERT-L-PT").unwrap();
        assert_eq!(bert.gpus(), 8);
        assert_eq!(bert.layout.label(), "8D-1P-1T");
        assert!(by_name("T5-3B").unwrap().fsdp);
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn state_sizes_are_paper_scale() {
        // BERT-L-PT: 0.334 B × 14 B ≈ 4.7 GB per rank (pure DP).
        let bert = by_name("BERT-L-PT").unwrap();
        let gb = bert.state_bytes_per_rank() as f64 / 1e9;
        assert!((4.0..5.5).contains(&gb), "{gb} GB");
        // GPT2-18B: 18 B × 14 / (4·4) ≈ 15.75 GB per rank.
        let gpt = by_name("GPT2-18B").unwrap();
        let gb = gpt.state_bytes_per_rank() as f64 / 1e9;
        assert!((14.0..17.0).contains(&gb), "{gb} GB");
    }

    #[test]
    fn comm_group_counts_follow_framework() {
        assert_eq!(by_name("BERT-B-FT").unwrap().comms_per_rank(), 2);
        let gpt_s = by_name("GPT2-S").unwrap().comms_per_rank();
        assert!((8..=10).contains(&gpt_s), "{gpt_s}");
        let gpt_3d = by_name("GPT2-S-3D").unwrap().comms_per_rank();
        assert!(gpt_3d > gpt_s, "3D builds more groups");
    }

    #[test]
    fn train_config_phantom_scale_hits_target_bytes() {
        for w in catalog() {
            let cfg = w.train_config(1);
            let d = cfg.model.input_dim;
            let tp = if w.fsdp { 1 } else { w.layout.tp };
            let h_local = cfg.model.hidden / tp;
            let bps = cfg.model.blocks / w.layout.pp;
            let param_elems =
                bps * (d * h_local + h_local + h_local * d + 2 * d) + d * cfg.model.classes;
            let slots = 1 + cfg.optimizer.state_slots();
            let logical = (param_elems * 4 * slots) as f64 * cfg.model.phantom_scale;
            let target = w.state_bytes_per_rank() as f64;
            assert!(
                (logical - target).abs() / target < 0.01,
                "{}: {logical} vs {target}",
                w.name
            );
        }
    }

    #[test]
    fn fsdp_workload_uses_tp_dim_as_shard_group() {
        let t5 = by_name("T5-3B").unwrap();
        let cfg = t5.train_config(1);
        assert!(cfg.fsdp);
        assert_eq!(cfg.layout.tp, 4);
        assert_eq!(cfg.layout.dp, 2);
    }
}

//! User-level just-in-time checkpointing (§3).
//!
//! The job links a small library and provides a `save_checkpoint`
//! function; everything else is automatic:
//!
//! 1. the interception layer watches the `cudaEventRecord` /
//!    `cudaStreamWaitEvent` traffic around collectives (here: collective
//!    tickets) and a **watchdog thread** detects hangs (§3.1);
//! 2. on a hang, the watchdog calls `save_checkpoint` *from its own
//!    thread* while the training thread stays parked in the hung
//!    collective — the simulation analogue of the paper's
//!    release-the-GIL + new-CUDA-stream dance (§3.2);
//! 3. the checkpoint goes to a rank-dependent path with a metadata
//!    completion marker, the scheduler is acked, and the job is torn down;
//! 4. on restart, each rank loads the checkpoint of *any* data-parallel
//!    replica of its cell via [`crate::checkpoint::jit_get_checkpoint_path`]
//!    (§3.3).
//!
//! [`run_user_level_job`] is the full launcher loop (submit → train →
//! fail → JIT checkpoint → quorum → reschedule → restore → continue)
//! used by tests, examples, and the Table 4 bench.

use crate::checkpoint::{self, CkptKind};
use crate::stream;
use cluster::scheduler::CheckpointAck;
use cluster::{FailureInjector, Scheduler, SharedStore};
use collectives::{CommId, Communicator};
use dltrain::{JobSetup, RankTrainer, TrainConfig, TrainState};
use proxy::{DirectExecutor, Executor, Watchdog};
use simcore::cost::{CostModel, StorageTier};
use simcore::sync::Mutex;
use simcore::sync::Mutex as PlMutex;
use simcore::time::ClockBoard;
use simcore::{GpuId, JobId, RankId, SimError, SimResult, SimTime};
use simgpu::Gpu;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of the user-level JIT library.
#[derive(Debug, Clone)]
pub struct JitUserConfig {
    /// Watchdog hang timeout (real time; a hang is a real hang).
    pub watchdog_timeout: Duration,
    /// Storage tier JIT checkpoints are written to.
    pub tier: StorageTier,
    /// Sharded-write tuning (shard size, worker pool, delta mode).
    pub shards: checkpoint::ShardConfig,
    /// Restore non-owner replicas by streaming state rank-to-rank from
    /// the replica that owns the chosen checkpoint ([`crate::stream`]),
    /// falling back to the store on any stream failure. Off = every
    /// rank pays the store round-trip (the §3.3 baseline).
    pub stream_recovery: bool,
    /// Real-time patience per stream frame before declaring the sending
    /// replica dead and falling back to the store.
    pub stream_patience: Duration,
    /// Fault injection: when set, the streaming replica "dies" after
    /// emitting this many frames of each recovery stream (see
    /// [`stream::send_state_truncated`]) — receivers must time out and
    /// fall back to the store. `None` = healthy sender.
    pub stream_truncate: Option<usize>,
}

impl Default for JitUserConfig {
    fn default() -> Self {
        JitUserConfig {
            watchdog_timeout: Duration::from_millis(1500),
            tier: StorageTier::Disk,
            shards: checkpoint::ShardConfig::default(),
            stream_recovery: true,
            stream_patience: Duration::from_secs(2),
            stream_truncate: None,
        }
    }
}

/// Timing record of one JIT checkpoint or restore event (Table 4 data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryEvent {
    /// Rank involved.
    pub rank: RankId,
    /// Virtual seconds spent writing the JIT checkpoint (0 for restores).
    pub checkpoint_time: SimTime,
    /// Virtual seconds spent restoring (0 for checkpoint events).
    pub restore_time: SimTime,
    /// Iteration the event refers to.
    pub iteration: u64,
}

/// Shared cell the trainer thread updates at each minibatch start so the
/// watchdog knows which iteration a checkpoint represents (the library's
/// equivalent of the user script passing the step counter).
#[derive(Debug, Default)]
pub struct IterationCell {
    it: AtomicU64,
    opt_t: AtomicU64,
}

impl IterationCell {
    /// Records the (iteration, optimizer timestep) at minibatch start.
    pub fn note(&self, iteration: u64, opt_t: u32) {
        self.it.store(iteration, Ordering::Release);
        self.opt_t.store(opt_t as u64, Ordering::Release);
    }

    /// Reads the current coordinates.
    pub fn get(&self) -> (u64, u32) {
        (
            self.it.load(Ordering::Acquire),
            self.opt_t.load(Ordering::Acquire) as u32,
        )
    }
}

/// The per-rank user-level JIT client: owns the armed watchdog.
pub struct JitUserClient {
    /// Iteration cell the training loop must update each minibatch.
    pub cell: Arc<IterationCell>,
    watchdog: Watchdog,
}

impl JitUserClient {
    /// Arms user-level JIT checkpointing on a rank: installs the
    /// collective observer on `exec` and spawns the watchdog whose hang
    /// action snapshots GPU state, writes the checkpoint + metadata, acks
    /// the scheduler, and aborts the job's communicators.
    #[allow(clippy::too_many_arguments)]
    pub fn arm(
        exec: &mut DirectExecutor,
        cfg: &JitUserConfig,
        job: JobId,
        layout: simcore::layout::ParallelLayout,
        store: Arc<SharedStore>,
        scheduler: Arc<Scheduler>,
        world: Arc<collectives::CommWorld>,
        events: Arc<Mutex<Vec<RecoveryEvent>>>,
    ) -> SimResult<JitUserClient> {
        let rank = exec.rank();
        let clock_idx = exec.clock_idx();
        let clock = exec.clock();
        let gpu = exec.shared_gpu();
        let cell = Arc::new(IterationCell::default());
        let cell_w = cell.clone();
        let coord = layout.coord(rank);
        let cost = exec.with_gpu(|g| g.cost_model().clone());
        let tier = cfg.tier;
        let shards = cfg.shards;
        let watchdog = Watchdog::spawn(cfg.watchdog_timeout, move || {
            // The hang action — the library's call into the user's
            // save_checkpoint, running while the trainer thread is parked.
            let result = save_checkpoint_from_watchdog(
                &gpu,
                &cell_w,
                &store,
                job,
                rank,
                coord.stage,
                coord.part,
                coord.dp,
                &cost,
                tier,
                &shards,
                &clock,
                clock_idx,
                &events,
            );
            if let Ok(ack) = result {
                let _ = scheduler.ack_checkpoint(job, ack);
            }
            // NOTE: the watchdog does NOT kill the job — §3 step 3 has
            // the *scheduler* kill it only after the checkpoint quorum,
            // so that every healthy rank gets to save first. The `world`
            // handle is kept for symmetry with the transparent design.
            let _ = &world;
        })?;
        exec.set_observer(watchdog.observer());
        Ok(JitUserClient { cell, watchdog })
    }

    /// True once the watchdog detected a hang and checkpointed.
    pub fn fired(&self) -> bool {
        self.watchdog.fired()
    }
}

#[allow(clippy::too_many_arguments)]
fn save_checkpoint_from_watchdog(
    gpu: &Arc<Mutex<Gpu>>,
    cell: &IterationCell,
    store: &SharedStore,
    job: JobId,
    rank: RankId,
    stage: usize,
    part: usize,
    dp: usize,
    cost: &CostModel,
    tier: StorageTier,
    shards: &checkpoint::ShardConfig,
    clock: &ClockBoard,
    clock_idx: usize,
    events: &Mutex<Vec<RecoveryEvent>>,
) -> SimResult<CheckpointAck> {
    let (buffers, logical_bytes) = {
        let g = gpu.lock();
        if !g.health().memory_readable() {
            // This rank is itself broken; it cannot contribute a
            // checkpoint (a replica will).
            return Err(SimError::CudaSticky(g.id));
        }
        g.snapshot_persistent()
    };
    let (iteration, opt_t) = cell.get();
    let state = TrainState {
        iteration,
        opt_t,
        buffers,
        logical_bytes,
    };
    let t = cost.checkpoint_write(logical_bytes, tier, cost.gpu.gpus_per_node());
    clock.advance(clock_idx, t);
    checkpoint::write_checkpoint_with(
        store,
        job,
        CkptKind::Jit,
        rank,
        stage,
        part,
        dp,
        &state,
        // Pool width keyed to the actual shard count of this state.
        &shards.auto_sized_for(&state),
    )?;
    events.lock().push(RecoveryEvent {
        rank,
        checkpoint_time: t,
        restore_time: SimTime::ZERO,
        iteration,
    });
    Ok(CheckpointAck {
        rank,
        iteration,
        stage,
        part,
    })
}

/// Result of a complete user-level job run.
#[derive(Debug)]
pub struct UserLevelOutcome {
    /// Final per-rank loss trajectories, indexed `[rank][iteration]`
    /// (`NaN` on ranks that never see the loss).
    pub losses: Vec<Vec<f32>>,
    /// Number of restarts (failure recoveries) performed.
    pub restarts: u32,
    /// Checkpoint/restore timing events.
    pub events: Vec<RecoveryEvent>,
}

/// The launcher loop for a user-level JIT job: runs `target_iters`
/// iterations to completion, recovering from every injected failure by
/// JIT checkpoint → quorum → reschedule → restore.
pub fn run_user_level_job(
    cfg: TrainConfig,
    cost: CostModel,
    injector: Arc<FailureInjector>,
    scheduler: Arc<Scheduler>,
    store: Arc<SharedStore>,
    jit: JitUserConfig,
    target_iters: u64,
) -> SimResult<UserLevelOutcome> {
    let layout = cfg.layout;
    let n = layout.world_size();
    let (job, mut assignment) = scheduler.submit(layout)?;
    let events: Arc<PlMutex<Vec<RecoveryEvent>>> = Arc::new(PlMutex::new(Vec::new()));
    let mut final_losses: Vec<Vec<f32>> = vec![vec![f32::NAN; target_iters as usize]; n];
    let mut restarts = 0u32;
    let max_generations = injector.pending_count() as u32 + 2;
    loop {
        let mut setup = JobSetup::build(layout, cost.clone(), cfg.ranks_per_node);
        apply_ring_topology(&mut setup, &scheduler, &assignment);
        let world = setup.world.clone();
        let per_rank = setup.per_rank.clone();
        let resume = checkpoint::assemble(&store, job, &layout).ok();
        let failure_seen = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let gen_results = {
            let cfg = cfg.clone();
            let cost = cost.clone();
            let injector = injector.clone();
            let scheduler2 = scheduler.clone();
            let store = store.clone();
            let events = events.clone();
            let jit = jit.clone();
            let assignment_now = assignment.clone();
            let world = world.clone();
            let failure_seen = failure_seen.clone();
            spawn_and_monitor(
                n,
                world.clone(),
                scheduler.clone(),
                job,
                failure_seen.clone(),
                move |i| {
                    let rank = RankId(i as u32);
                    let gpu = Gpu::new(assignment_now[i], cost.clone());
                    let mut exec = DirectExecutor::new(rank, i, gpu, world.clone());
                    let client = JitUserClient::arm(
                        &mut exec,
                        &jit,
                        job,
                        layout,
                        store.clone(),
                        scheduler2.clone(),
                        world.clone(),
                        events.clone(),
                    )?;
                    let mut tr =
                        RankTrainer::new(exec, cfg.clone(), &per_rank[i], injector.clone())?;
                    // Resume from an assembled checkpoint if one exists,
                    // paying the fixed restart + read costs (the `r` of
                    // §5). With stream recovery, only the replica that
                    // owns the chosen checkpoint reads the store; the
                    // cell's other replicas receive the state as a
                    // pipelined rank-to-rank shard stream and fall back
                    // to the store if the owner is dead.
                    if let Some(plan) = resume.as_ref() {
                        let coord = layout.coord(rank);
                        let choice = plan[&(coord.stage, coord.part)];
                        let owner = layout.rank_at(simcore::layout::GridCoord {
                            dp: choice.dp,
                            stage: coord.stage,
                            part: coord.part,
                        });
                        let gpn = cost.gpu.gpus_per_node();
                        if !jit.stream_recovery || rank == owner {
                            let (state, meta, _rstats) = crate::restore::load_for_rank_parallel(
                                store.as_ref(),
                                job,
                                &layout,
                                rank,
                                &crate::restore::RestoreConfig::default(),
                            )?;
                            let t_restore = cost.process_restart
                                + cost.checkpoint_read(
                                    meta.logical_bytes,
                                    jit.tier,
                                    cfg.ranks_per_node,
                                );
                            tr.exec.clock().advance(i, t_restore);
                            if jit.stream_recovery {
                                for dp in 0..layout.dp {
                                    if dp == choice.dp {
                                        continue;
                                    }
                                    let peer = layout.rank_at(simcore::layout::GridCoord {
                                        dp,
                                        stage: coord.stage,
                                        part: coord.part,
                                    });
                                    let sn = assignment_now[i].0 as usize / gpn
                                        == assignment_now[peer.index()].0 as usize / gpn;
                                    match jit.stream_truncate {
                                        None => stream::send_state(
                                            &world,
                                            &cost,
                                            rank,
                                            i,
                                            peer,
                                            sn,
                                            &state,
                                            jit.shards.shard_bytes,
                                        )?,
                                        Some(keep) => stream::send_state_truncated(
                                            &world,
                                            &cost,
                                            rank,
                                            i,
                                            peer,
                                            sn,
                                            &state,
                                            jit.shards.shard_bytes,
                                            keep,
                                        )?,
                                    };
                                }
                            }
                            tr.restore(&state)?;
                            events.lock().push(RecoveryEvent {
                                rank,
                                checkpoint_time: SimTime::ZERO,
                                restore_time: t_restore,
                                iteration: state.iteration,
                            });
                        } else {
                            tr.exec.clock().advance(i, cost.process_restart);
                            let before = tr.exec.clock().now(i);
                            let state = match stream::recv_state(
                                &world,
                                &cost,
                                owner,
                                rank,
                                i,
                                jit.stream_patience,
                            ) {
                                Ok(state) => state,
                                Err(_) => {
                                    // Dead or corrupt replica stream:
                                    // §3.3 store round-trip instead,
                                    // through the parallel fetch plane.
                                    let (state, meta, _rstats) =
                                        crate::restore::load_for_rank_parallel(
                                            store.as_ref(),
                                            job,
                                            &layout,
                                            rank,
                                            &crate::restore::RestoreConfig::default(),
                                        )?;
                                    tr.exec.clock().advance(
                                        i,
                                        cost.checkpoint_read(
                                            meta.logical_bytes,
                                            jit.tier,
                                            cfg.ranks_per_node,
                                        ),
                                    );
                                    state
                                }
                            };
                            let t_restore =
                                cost.process_restart + (tr.exec.clock().now(i) - before);
                            tr.restore(&state)?;
                            events.lock().push(RecoveryEvent {
                                rank,
                                checkpoint_time: SimTime::ZERO,
                                restore_time: t_restore,
                                iteration: state.iteration,
                            });
                        }
                    }
                    let start = tr.iteration();
                    let mut losses: Vec<(u64, f32)> = Vec::new();
                    let mut failure: Option<SimError> = None;
                    for it in start..target_iters {
                        client.cell.note(tr.iteration(), tr.opt_t());
                        match tr.train_step() {
                            Ok(l) => losses.push((it, l.unwrap_or(f32::NAN))),
                            Err(e) => {
                                if std::env::var("JIT_DEBUG").is_ok() {
                                    eprintln!("[debug] {rank} failed at it {it}: {e}");
                                }
                                failure = Some(e);
                                failure_seen.store(true, std::sync::atomic::Ordering::Release);
                                break;
                            }
                        }
                    }
                    Ok::<_, SimError>((losses, failure, assignment_now[i]))
                },
            )
        };
        let mut any_failure = false;
        for (i, res) in gen_results.into_iter().enumerate() {
            let (losses, failure, gpu_id) = res?;
            for (it, l) in losses {
                final_losses[i][it as usize] = l;
            }
            if let Some(err) = failure {
                any_failure = true;
                if err.is_hard() {
                    scheduler.report_gpu_failure(job, gpu_id)?;
                }
            }
        }
        if !any_failure {
            break;
        }
        restarts += 1;
        if restarts > max_generations {
            return Err(SimError::Protocol(format!(
                "job did not converge after {restarts} restarts"
            )));
        }
        assignment = scheduler.reschedule(job)?;
    }
    let events = events.lock().clone();
    Ok(UserLevelOutcome {
        losses: final_losses,
        restarts,
        events,
    })
}

/// Spawns rank threads and plays the scheduler's monitoring role: once a
/// rank reports a failure, wait for the checkpoint quorum (§3, step 3 —
/// at least one data-parallel replica of every pipeline stage and tensor
/// partition acknowledged), then kill the job by aborting its
/// communicators so parked ranks release, and join everyone.
fn spawn_and_monitor<T, F>(
    n: usize,
    world: Arc<collectives::CommWorld>,
    scheduler: Arc<Scheduler>,
    job: JobId,
    failure_seen: Arc<std::sync::atomic::AtomicBool>,
    f: F,
) -> Vec<SimResult<T>>
where
    T: Send + 'static,
    F: Fn(usize) -> SimResult<T> + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let f = f.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("rank{i}"))
            .spawn(move || f(i));
        match spawned {
            Ok(h) => handles.push(h),
            Err(e) => {
                // A partial world can only hang: release any ranks
                // already parked in collectives, then fail every slot.
                world.abort_all();
                for h in handles {
                    let _ = h.join();
                }
                return (0..n)
                    .map(|_| {
                        Err(SimError::Protocol(format!(
                            "failed to spawn rank thread: {e}"
                        )))
                    })
                    .collect();
            }
        }
    }
    // Monitoring loop.
    let mut kill_at: Option<std::time::Instant> = None;
    loop {
        if handles.iter().all(|h| h.is_finished()) {
            break;
        }
        if failure_seen.load(std::sync::atomic::Ordering::Acquire) {
            let deadline =
                *kill_at.get_or_insert_with(|| std::time::Instant::now() + Duration::from_secs(10));
            let quorum = scheduler.checkpoint_quorum(job).ok().flatten().is_some();
            if quorum || std::time::Instant::now() > deadline {
                world.abort_all();
            }
        }
        // jitlint::allow(virtual_time): bounded 2ms poll — JoinHandle has no join-any condvar
        std::thread::sleep(Duration::from_millis(2));
    }
    handles
        .into_iter()
        .map(|h| match h.join() {
            Ok(r) => r,
            Err(_) => Err(SimError::Protocol("rank thread panicked".into())),
        })
        .collect()
}

/// Rewires every communicator's cost topology with the real node
/// assignment of the job's current GPU placement (the scheduler's
/// cluster view), replacing the contiguous-placement default — a
/// data-parallel group whose replicas land on different nodes pays NIC
/// ring hops even when its rank indices are adjacent, and the
/// hierarchical engine's per-node group sizes follow the actual
/// placement rather than the `ranks_per_node` heuristic. Each logical
/// communicator is rebuilt once (bundles share the rebuilt `Arc`) and
/// re-registered so [`collectives::CommWorld::abort_all`] reaches the
/// instance the ranks actually synchronize through.
fn apply_ring_topology(setup: &mut JobSetup, scheduler: &Scheduler, assignment: &[GpuId]) {
    let mut rebuilt: std::collections::HashMap<CommId, Arc<Communicator>> =
        std::collections::HashMap::new();
    let world = setup.world.clone();
    let mut remap = |c: &Arc<Communicator>| -> Arc<Communicator> {
        rebuilt
            .entry(c.id)
            .or_insert_with(|| {
                let gpus: Vec<GpuId> = c
                    .ranks()
                    .iter()
                    .filter_map(|r| assignment.get(r.index()).copied())
                    .collect();
                if gpus.len() != c.ranks().len() {
                    // Assignment shorter than the world (harness misuse):
                    // keep the contiguous-placement default.
                    return c.clone();
                }
                let node_of = scheduler.with_cluster(|cl| cl.node_assignment(&gpus));
                let Ok(node_of) = node_of else {
                    // A GPU the cluster no longer tracks (harness misuse):
                    // keep the contiguous-placement default.
                    return c.clone();
                };
                let fresh = c.set_topology(node_of);
                world.replace_comm(fresh.clone());
                fresh
            })
            .clone()
    };
    for bundle in &mut setup.per_rank {
        bundle.global = remap(&bundle.global);
        bundle.extras = bundle.extras.iter().map(&mut remap).collect();
        if let Some(dp) = bundle.dp.take() {
            bundle.dp = Some(remap(&dp));
        }
        if let Some(tp) = bundle.tp.take() {
            bundle.tp = Some(remap(&tp));
        }
        if let Some(pp) = bundle.pp.take() {
            bundle.pp = Some(remap(&pp));
        }
    }
}

/// Allocates simulated GPUs for an assignment (helper for harnesses).
pub fn gpus_for(assignment: &[GpuId], cost: &CostModel) -> Vec<Gpu> {
    assignment
        .iter()
        .map(|g| Gpu::new(*g, cost.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::Cluster;
    use simcore::cost::GpuGeneration;
    use simcore::failure::{FailureKind, FailureSpec, Phase};

    #[test]
    fn iteration_cell_is_a_simple_register() {
        let c = IterationCell::default();
        assert_eq!(c.get(), (0, 0));
        c.note(7, 7);
        assert_eq!(c.get(), (7, 7));
        c.note(8, 8);
        assert_eq!(c.get(), (8, 8));
    }

    #[test]
    fn default_config_uses_disk_tier() {
        let cfg = JitUserConfig::default();
        assert_eq!(cfg.tier, StorageTier::Disk);
        assert!(cfg.watchdog_timeout.as_millis() >= 100);
    }

    #[test]
    fn gpus_for_builds_devices_with_assignment_ids() {
        let cost = CostModel::v100();
        let gpus = gpus_for(&[GpuId(3), GpuId(9)], &cost);
        assert_eq!(gpus.len(), 2);
        assert_eq!(gpus[0].id, GpuId(3));
        assert_eq!(gpus[1].id, GpuId(9));
    }

    #[test]
    fn failure_free_job_never_restarts_or_checkpoints() -> SimResult<()> {
        let cfg = dltrain::TrainConfig::tiny_dp(2);
        let scheduler = Arc::new(cluster::Scheduler::new(Cluster::new(
            GpuGeneration::V100_32G,
            1,
        )));
        let store = Arc::new(SharedStore::new());
        let out = run_user_level_job(
            cfg,
            CostModel::v100(),
            FailureInjector::none(),
            scheduler,
            store.clone(),
            JitUserConfig::default(),
            5,
        )?;
        assert_eq!(out.restarts, 0);
        assert!(out.events.is_empty());
        assert!(store.is_empty(), "no JIT checkpoints without failures");
        assert!(out.losses[0].iter().all(|l| l.is_finite()));
        Ok(())
    }

    #[test]
    fn jit_checkpoint_files_follow_rank_dependent_paths() -> SimResult<()> {
        let cfg = dltrain::TrainConfig::tiny_dp(2);
        let scheduler = Arc::new(cluster::Scheduler::new(Cluster::new(
            GpuGeneration::V100_32G,
            2,
        )));
        let store = Arc::new(SharedStore::new());
        let injector = FailureInjector::with_specs(vec![FailureSpec::new(
            2,
            Phase::Backward,
            RankId(0),
            FailureKind::StickyCuda,
        )]);
        run_user_level_job(
            cfg,
            CostModel::v100(),
            injector,
            scheduler,
            store.clone(),
            JitUserConfig::default(),
            5,
        )?;
        // The healthy replica (rank 1 → dp1) wrote under its own path.
        let paths = store.list("ckpt/");
        assert!(
            paths.iter().any(|p| p.contains("/dp1/")),
            "rank-dependent directory expected: {paths:?}"
        );
        Ok(())
    }
}

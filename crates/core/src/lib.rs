//! **Just-In-Time Checkpointing** — the paper's primary contribution.
//!
//! Instead of checkpointing periodically, checkpoint *after a failure is
//! detected*, exploiting two domain properties of synchronous distributed
//! DNN training: (1) model/optimizer state mutates only inside the short
//! optimizer step, behind a gradient all-reduce that acts as a barrier,
//! so when any rank fails every healthy rank is parked with unmodified
//! state; and (2) data parallelism replicates that state, so a failed
//! GPU's state is always recoverable from a replica. Recovery then costs
//! at most one minibatch of redone work instead of half a checkpoint
//! interval across every GPU.
//!
//! Two designs, as in the paper:
//!
//! * [`user_level`] (§3) — a library jobs link against: a watchdog
//!   detects collective hangs, calls the job's `save_checkpoint` while
//!   the training thread is parked, writes rank-dependent checkpoint
//!   files with completion metadata, notifies the scheduler, and on
//!   restart [`checkpoint::jit_get_checkpoint_path`] assembles a
//!   consistent checkpoint from any healthy data-parallel replica.
//! * [`transparent`] (§4) — a recovery engine plugged into the device
//!   proxy's interception layer: errors never reach the framework;
//!   recovery resets GPU state to minibatch start (in place, via proxy
//!   restart, from a replica, or by migrating to a fresh GPU under a
//!   CRIU-preserved worker) and replays the logged device APIs.
//!
//! Plus:
//!
//! * [`checkpoint`] — the shared checkpoint format/naming/assembly
//!   protocol (§3.2–§3.3), also used by the periodic baselines;
//! * [`pipeline`] — write-behind checkpoint persistence: bounded-queue
//!   async uploads with per-job admission control, so shard puts overlap
//!   shard encode/CRC instead of stalling the training thread;
//! * [`stream`] — pipelined replica-to-replica recovery state transfer
//!   (CRC-framed codec shards rank-to-rank, replacing the per-rank
//!   store round-trip on restore);
//! * [`restore`] — the parallel restore plane: bounded shard fetch pool
//!   with in-order fan-in verify/decode, delta-chain prefetch, and
//!   multi-source striping across placed storage nodes;
//! * [`analysis`] — the §5 wasted-work model (optimal frequency,
//!   eq. 1–10, dollar costs);
//! * [`workloads`] — the Table 2 workload catalog with calibration.

pub mod analysis;
pub mod checkpoint;
pub mod pipeline;
pub mod restore;
pub mod stream;
pub mod transparent;
pub mod user_level;
pub mod workloads;

pub use checkpoint::{jit_get_checkpoint_path, CkptKind};
pub use pipeline::{CkptTicket, JobGate, WriteBehind, WriteBehindConfig};
pub use restore::{load_for_rank_parallel, read_checkpoint_parallel, RestoreConfig, RestoreStats};
pub use transparent::{RecoveryReport, TransparentEngine};
pub use user_level::{JitUserClient, JitUserConfig};
pub use workloads::{catalog, Workload};

//! Transparent just-in-time error recovery (§4).
//!
//! [`TransparentEngine`] is the [`proxy::RecoveryHandler`] plugged into
//! every rank's interception client. When any intercepted operation
//! fails, the failing rank enters the engine; the engine aborts the
//! communication world so every peer parked in a hung collective surfaces
//! too (the per-rank watchdogs do the same for hangs the engine hasn't
//! seen yet). Once **all** ranks have arrived, the last arrival plans the
//! round:
//!
//! * **Minibatch replay** (§4.2.1) — failure before the optimizer
//!   mutated state. Every rank resets to minibatch start — in place if
//!   its GPU is clean (case 1), via host round-trip + proxy restart if
//!   the driver is suspect (case 2), via proxy restart + replica copy if
//!   the context is poisoned (case 3) — then all ranks replay their
//!   logged device APIs (replayed collectives rendezvous across ranks)
//!   and retry the failed operation.
//! * **Roll forward** (§4.2.2) — failure inside the optimizer step.
//!   Healthy ranks have already advanced to minibatch *i+1* (they are
//!   parked at its first collective); the victim copies parameter and
//!   optimizer state *of the start of i+1* from a replica and skips the
//!   rest of its optimizer-step device calls. No replay is needed.
//! * **Hard error** (§4.3) — the victim's GPU is dead. Healthy ranks JIT
//!   checkpoint their GPU state through the §4.3 allocation-site naming
//!   scheme; every worker takes a CRIU checkpoint of its CPU state; the
//!   victim migrates to a replacement GPU and reads the buffer files its
//!   replicas wrote; then recovery proceeds as minibatch replay.
//!
//! Every step's duration is charged to the rank's virtual clock and
//! recorded in a [`RecoveryReport`] — the raw data behind Tables 5–7.

use cluster::SharedStore;
use dltrain::{build_comms, JobComms};
use proxy::{
    CommToken, Executor, MinibatchPosition, PendingOp, ProxyClient, RecoveryHandler,
    RecoveryOutcome, Watchdog,
};
use simcore::cost::StorageTier;
use simcore::layout::ParallelLayout;
use simcore::sync::{Condvar, Mutex};
use simcore::{GpuId, RankId, SimError, SimResult, SimTime};
use simgpu::{Gpu, GpuHealth};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What one rank reported on entering a recovery round.
#[derive(Debug, Clone, Copy)]
struct RankStatus {
    health: GpuHealth,
    /// The rank's own fault was the trigger (device error or transient
    /// network fault on its NCCL call) — as opposed to surfacing via an
    /// abort while parked behind someone else's failure.
    is_victim: bool,
    position: MinibatchPosition,
    iteration: u64,
}

/// The planned recovery mode for a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// §4.2.1: reset all ranks to minibatch start and replay.
    MinibatchReplay,
    /// §4.2.2: victim rolls forward to the next minibatch; healthy ranks
    /// simply retry.
    RollForward,
}

/// One step of a recovery, with its virtual duration (Table 7 rows).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryStep {
    /// Step label (matches the paper's breakdown).
    pub name: String,
    /// Virtual duration.
    pub time: SimTime,
}

/// Timing report for one rank's recovery (Tables 5–7).
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The recovering rank.
    pub rank: RankId,
    /// Recovery mode of the round.
    pub mode: RecoveryMode,
    /// Whether this rank's GPU was the failed one.
    pub was_victim: bool,
    /// Whether a hard (migration) path ran.
    pub hard: bool,
    /// Per-step durations.
    pub steps: Vec<RecoveryStep>,
    /// Total recovery time for this rank.
    pub total: SimTime,
}

struct RoundPlan {
    mode: RecoveryMode,
    /// Per-cell replica-copy roots: (stage, part) → broadcast root rank.
    cell_sync: HashMap<(usize, usize), RankId>,
    /// Fresh communicator bundles (per rank).
    new_comms: Vec<JobComms>,
    /// Ranks whose GPU is hard-failed.
    hard_victims: Vec<RankId>,
}

struct CoordState {
    round: u64,
    arrived: HashMap<RankId, RankStatus>,
    plan: Option<Arc<RoundPlan>>,
    finished: usize,
}

/// Per-job transparent recovery engine (shared by all rank clients).
pub struct TransparentEngine {
    layout: ParallelLayout,
    world: Arc<collectives::CommWorld>,
    state: Mutex<CoordState>,
    cv: Condvar,
    arrive_timeout: Duration,
    watchdog_timeout: Duration,
    watchdogs: Mutex<HashMap<RankId, Watchdog>>,
    reports: Mutex<Vec<RecoveryReport>>,
    /// Store used for the §4.3 hard-error buffer files.
    store: Arc<SharedStore>,
    /// Replacement-GPU allocator for hard errors (returns a fresh device
    /// on a healthy node, as the scheduler would).
    gpu_allocator: Mutex<Box<dyn FnMut(RankId) -> Gpu + Send>>,
    /// Framework extra process groups per rank (must match the job
    /// setup's `extra_comms` so recovery rebuilds the same set).
    extra_comms: usize,
    rounds_run: Mutex<u64>,
}

impl TransparentEngine {
    /// Creates the engine for a job.
    pub fn new(
        layout: ParallelLayout,
        world: Arc<collectives::CommWorld>,
        store: Arc<SharedStore>,
        gpu_allocator: impl FnMut(RankId) -> Gpu + Send + 'static,
    ) -> Arc<Self> {
        Self::with_extra_comms(layout, world, store, gpu_allocator, 0)
    }

    /// [`TransparentEngine::new`] for jobs whose setup registered
    /// `extra_comms` additional framework process groups.
    pub fn with_extra_comms(
        layout: ParallelLayout,
        world: Arc<collectives::CommWorld>,
        store: Arc<SharedStore>,
        gpu_allocator: impl FnMut(RankId) -> Gpu + Send + 'static,
        extra_comms: usize,
    ) -> Arc<Self> {
        Arc::new(TransparentEngine {
            layout,
            world,
            state: Mutex::new(CoordState {
                round: 0,
                arrived: HashMap::new(),
                plan: None,
                finished: 0,
            }),
            cv: Condvar::new(),
            arrive_timeout: Duration::from_secs(30),
            // Generous real-time hang threshold: on an oversubscribed
            // host a healthy collective can easily stall for hundreds of
            // milliseconds, and the paper excludes detection latency from
            // its recovery measurements anyway (§6.4).
            watchdog_timeout: Duration::from_millis(1500),
            watchdogs: Mutex::new(HashMap::new()),
            reports: Mutex::new(Vec::new()),
            store,
            gpu_allocator: Mutex::new(Box::new(gpu_allocator)),
            extra_comms,
            rounds_run: Mutex::new(0),
        })
    }

    /// Attaches the engine to a rank's client: installs the recovery
    /// handler and arms this rank's hang watchdog.
    pub fn attach(self: &Arc<Self>, client: &mut ProxyClient) -> SimResult<()> {
        client.set_handler(self.clone());
        self.arm_watchdog(client)
    }

    fn arm_watchdog(&self, client: &mut ProxyClient) -> SimResult<()> {
        let world = self.world.clone();
        let wd = Watchdog::spawn(self.watchdog_timeout, move || {
            // A hang means some peer failed: abort everything so all
            // parked ranks surface into the recovery engine.
            world.abort_all();
        })?;
        client.set_observer(wd.observer());
        self.watchdogs.lock().insert(client.rank(), wd);
        Ok(())
    }

    /// Recovery rounds completed so far.
    pub fn rounds(&self) -> u64 {
        *self.rounds_run.lock()
    }

    /// All per-rank recovery reports recorded so far.
    pub fn reports(&self) -> Vec<RecoveryReport> {
        self.reports.lock().clone()
    }

    /// The §4.3 buffer-file path for a (cell, storage key) pair: identical
    /// on every data-parallel replica of the cell.
    fn hard_path(round: u64, stage: usize, part: usize, key: &str) -> String {
        format!("hard/r{round}/s{stage}p{part}/{key}")
    }

    /// Rank-enter protocol: register status, make sure everyone else will
    /// surface, wait for the full quorum, and have the last arrival plan
    /// the round.
    fn rank_enter(&self, rank: RankId, status: RankStatus) -> SimResult<(u64, Arc<RoundPlan>)> {
        // Ensure every peer surfaces (idempotent with watchdog aborts).
        self.world.abort_all();
        let n = self.layout.world_size();
        let mut st = self.state.lock();
        let round = st.round;
        st.arrived.insert(rank, status);
        if st.arrived.len() == n {
            // Last arrival: plan the round.
            let plan = self.plan_round(&st.arrived)?;
            st.plan = Some(Arc::new(plan));
            self.cv.notify_all();
        } else {
            let deadline = Instant::now() + self.arrive_timeout;
            while st.plan.is_none() {
                if Instant::now() > deadline {
                    return Err(SimError::Protocol(format!(
                        "recovery quorum timeout: {}/{} ranks arrived in round {round}",
                        st.arrived.len(),
                        n
                    )));
                }
                self.cv.wait_for(&mut st, Duration::from_millis(2));
            }
        }
        let plan = st.plan.clone().ok_or_else(|| {
            SimError::Protocol(format!("recovery round {round} has no plan after quorum"))
        })?;
        Ok((round, plan))
    }

    /// Marks a rank done with the round; the last one resets round state.
    fn rank_finish(&self, _rank: RankId) {
        let n = self.layout.world_size();
        let mut st = self.state.lock();
        st.finished += 1;
        if st.finished == n {
            st.round += 1;
            st.arrived.clear();
            st.plan = None;
            st.finished = 0;
            *self.rounds_run.lock() += 1;
            self.cv.notify_all();
        } else {
            // Wait for the round to fully close before returning, so a
            // rank cannot race ahead and trip a new round against
            // stragglers of this one.
            let round_now = st.round;
            let deadline = Instant::now() + self.arrive_timeout;
            while st.round == round_now {
                if Instant::now() > deadline {
                    return;
                }
                self.cv.wait_for(&mut st, Duration::from_millis(2));
            }
        }
    }

    fn plan_round(&self, arrived: &HashMap<RankId, RankStatus>) -> SimResult<RoundPlan> {
        // Victims: ranks whose device is not healthy.
        let mut hard_victims = Vec::new();
        let mut soft_victims = Vec::new();
        let mut victim_past_optimizer = false;
        for (r, s) in arrived {
            match s.health {
                GpuHealth::Healthy => {}
                GpuHealth::HardwareFailed => hard_victims.push(*r),
                GpuHealth::DriverSuspect | GpuHealth::Sticky => soft_victims.push(*r),
            }
            if s.is_victim && s.position != MinibatchPosition::FwdBwd {
                victim_past_optimizer = true;
            }
        }
        // Roll forward exactly when the victim's fault struck at or past
        // the optimizer step (§4.2.2): its replicas' state is already the
        // start of the *next* minibatch. Iteration numbers are NOT used —
        // pipeline stages legitimately sit at different iterations.
        let mode = if victim_past_optimizer {
            RecoveryMode::RollForward
        } else {
            RecoveryMode::MinibatchReplay
        };
        // Cells that need a replica copy: those containing a victim whose
        // memory is gone (sticky/hard). The root is the lowest healthy
        // replica in the cell. In roll-forward mode, every victim needs a
        // replica copy regardless of memory readability (its state is
        // torn mid-update).
        let mut cell_sync: HashMap<(usize, usize), RankId> = HashMap::new();
        let needs_copy = |r: &RankId| {
            let s = &arrived[r];
            match mode {
                RecoveryMode::RollForward => true,
                RecoveryMode::MinibatchReplay => !s.health.memory_readable(),
            }
        };
        // Hard victims restore from the §4.3 buffer files instead of a
        // broadcast, so only soft victims drive cell syncs.
        for victim in soft_victims.iter() {
            if !needs_copy(victim) {
                continue;
            }
            let coord = self.layout.coord(*victim);
            let cell = (coord.stage, coord.part);
            let root = self
                .layout
                .dp_group_of(*victim)
                .into_iter()
                .find(|r| r != victim && arrived[r].health == GpuHealth::Healthy)
                .ok_or_else(|| {
                    SimError::NoCheckpointAvailable(format!(
                        "no healthy data-parallel replica for {victim} (dp = {})",
                        self.layout.dp
                    ))
                })?;
            cell_sync.insert(cell, root);
        }
        // Rebuild the communication layer on a clean world, including
        // the framework's extra process groups. Recreated communicators
        // adopt their predecessors' completed-slot caches so replayed
        // operations are served without re-participation (the old arcs
        // are swapped in per-rank during rebind).
        self.world.reset();
        let mut new_comms = build_comms(&self.layout, &self.world);
        let n = self.layout.world_size();
        let all: Vec<RankId> = (0..n).map(|i| RankId(i as u32)).collect();
        let idx: Vec<usize> = (0..n).collect();
        for _ in 0..self.extra_comms {
            let c = self.world.create_comm(all.clone(), idx.clone());
            for bundle in &mut new_comms {
                bundle.extras.push(c.clone());
            }
        }
        Ok(RoundPlan {
            mode,
            cell_sync,
            new_comms,
            hard_victims,
        })
    }

    /// Swaps the client's registered communicators for the freshly built
    /// ones, matching by member set (tokens stay stable, like virtual
    /// handles).
    fn rebind_comms(
        &self,
        client: &mut ProxyClient,
        bundle: &JobComms,
    ) -> SimResult<Vec<CommToken>> {
        let world_ranks: Vec<RankId> = (0..self.layout.world_size())
            .map(|i| RankId(i as u32))
            .collect();
        let tokens = client.comm_tokens();
        // World-spanning tokens map, in token order, onto [global,
        // extras...] — token numbering is SPMD-identical across ranks, so
        // every rank pairs the same token with the same instance.
        let mut world_pool: Vec<Arc<collectives::Communicator>> =
            std::iter::once(bundle.global.clone())
                .chain(bundle.extras.iter().cloned())
                .collect();
        world_pool.reverse(); // pop() yields global first
        for token in &tokens {
            let old_arc = client.comm(*token)?;
            let old = old_arc.ranks().to_vec();
            // Specific groups first: in pure data parallelism the dp
            // group's member set equals the world group's, and the dp
            // token must keep its own (cache-bearing) instance.
            let replacement = if let Some(dp) = bundle.dp.as_ref().filter(|c| c.ranks() == old) {
                dp.clone()
            } else if let Some(tp) = bundle.tp.as_ref().filter(|c| c.ranks() == old) {
                tp.clone()
            } else if let Some(pp) = bundle.pp.as_ref().filter(|c| c.ranks() == old) {
                pp.clone()
            } else if old == world_ranks {
                world_pool.pop().ok_or_else(|| {
                    SimError::Protocol("more world-group tokens than rebuilt comms".into())
                })?
            } else {
                return Err(SimError::Protocol(format!(
                    "no rebuilt communicator matches member set {old:?}"
                )));
            };
            // Carry the completed-slot cache forward so replayed
            // operations can be served without re-participation.
            replacement.adopt_completed_from(&old_arc);
            client.replace_comm(*token, replacement);
        }
        Ok(tokens)
    }

    /// The hard-error path for a *healthy* rank: write every persistent
    /// buffer to the shared store under the cross-rank-stable key, and
    /// take a CRIU checkpoint of the worker CPU state (§4.3).
    fn hard_healthy_side(
        &self,
        client: &mut ProxyClient,
        round: u64,
        steps: &mut Vec<RecoveryStep>,
    ) -> SimResult<()> {
        let coord = self.layout.coord(client.rank());
        let t0 = client.now();
        let (snap, bytes) = client.snapshot_persistent_to_host()?;
        let cost = client.server().gpu().cost_model().clone();
        for (key, _tag, data) in &snap {
            let framed = simcore::codec::encode_framed(data);
            self.store
                .put(Self::hard_path(round, coord.stage, coord.part, key), framed)?;
        }
        client.charge(cost.checkpoint_write(bytes, StorageTier::Disk, cost.gpu.gpus_per_node()));
        // CRIU checkpoint + restore of the worker CPU process. The image
        // really carries the interception state (replay log, iteration,
        // communicator generations); the worker heap's logical size is a
        // fixed multi-GB footprint for cost purposes.
        let image = client.worker_cpu_state()?;
        let criu_bytes = 2 << 30;
        client.charge(cost.criu(criu_bytes));
        client.restore_worker_cpu_state(&image)?;
        client.charge(cost.criu(criu_bytes)); // restore on the new node
                                              // Read the GPU state back on the restored side.
        client.charge(cost.checkpoint_read(bytes, StorageTier::Disk, cost.gpu.gpus_per_node()));
        steps.push(RecoveryStep {
            name: "JIT checkpoint + CRIU + restore".into(),
            time: client.now().saturating_sub(t0),
        });
        Ok(())
    }

    /// The hard-error path for the *victim*: migrate to a replacement GPU
    /// under the CRIU-preserved worker, re-create persistent objects, and
    /// fill them from the buffer files the replicas wrote.
    fn hard_victim_side(
        &self,
        client: &mut ProxyClient,
        round: u64,
        steps: &mut Vec<RecoveryStep>,
    ) -> SimResult<()> {
        let coord = self.layout.coord(client.rank());
        let t0 = client.now();
        let new_gpu = (self.gpu_allocator.lock())(client.rank());
        let cost = new_gpu.cost_model().clone();
        // CRIU image taken before migration, restored on the new node —
        // the replay log and interception state survive the move.
        let image = client.worker_cpu_state()?;
        client.migrate_to_gpu(new_gpu)?;
        client.restore_worker_cpu_state(&image)?;
        client.charge(cost.criu(2 << 30));
        // Read every persistent buffer from a replica's files, matched by
        // the allocation-site storage key (§4.3's naming scheme).
        let (local, bytes) = client.server().gpu().snapshot_persistent();
        let mut restored = Vec::with_capacity(local.len());
        for (key, tag, data) in local {
            let path = Self::hard_path(round, coord.stage, coord.part, &key);
            // Replicas write these files concurrently with this rank's
            // migration; wait (bounded) for them to land.
            let deadline = Instant::now() + Duration::from_secs(5);
            let framed = loop {
                match self.store.get(&path) {
                    Ok(f) => break f,
                    Err(_) if Instant::now() < deadline => {
                        // jitlint::allow(virtual_time): bounded retry — the blob store has no write-notification API
                        std::thread::sleep(Duration::from_millis(2))
                    }
                    Err(_) => {
                        return Err(SimError::NoCheckpointAvailable(format!(
                            "no replica wrote {path}"
                        )))
                    }
                }
            };
            let replica_data: Vec<f32> = simcore::codec::decode_framed(&framed)?;
            if replica_data.len() != data.len() {
                return Err(SimError::CorruptCheckpoint(format!(
                    "{path}: length {} vs local layout {}",
                    replica_data.len(),
                    data.len()
                )));
            }
            restored.push((key, tag, replica_data));
        }
        client
            .server_mut()
            .gpu_mut()
            .restore_persistent(&restored)?;
        client.charge(cost.checkpoint_read(bytes, StorageTier::Disk, cost.gpu.gpus_per_node()));
        steps.push(RecoveryStep {
            name: "migrate + CRIU restore + read replica buffers".into(),
            time: client.now().saturating_sub(t0),
        });
        Ok(())
    }
}

impl RecoveryHandler for TransparentEngine {
    fn handle(
        &self,
        client: &mut ProxyClient,
        _op: &PendingOp,
        err: &SimError,
    ) -> SimResult<RecoveryOutcome> {
        let rank = client.rank();
        let my_health = client.health();
        let i_am_victim =
            my_health != GpuHealth::Healthy || matches!(err, SimError::NetworkTransient);
        let status = RankStatus {
            health: my_health,
            is_victim: i_am_victim,
            position: client.position(),
            iteration: client.iteration(),
        };
        // Silence this rank's watchdog for the duration of recovery: the
        // recovery collectives (rendezvous, replica sync, replay) run at
        // coordination pace and must not be mistaken for hangs.
        client.set_observer(Arc::new(collectives::NullObserver));
        if std::env::var("JIT_DEBUG").is_ok() {
            eprintln!(
                "[debug] {rank} enters recovery: err={err}, health={:?}, it={}, pos={:?}",
                status.health, status.iteration, status.position
            );
        }
        let (round, plan) = self.rank_enter(rank, status)?;
        let coord = self.layout.coord(rank);
        let i_am_hard = plan.hard_victims.contains(&rank);
        let recovery_start = client.now();
        let mut steps: Vec<RecoveryStep> = Vec::new();

        // Step 1: delete communicators and GPU handles.
        let t0 = client.now();
        let cost = client.server().gpu().cost_model().clone();
        client.charge(cost.comm_teardown);
        steps.push(RecoveryStep {
            name: "Delete communicators and GPU handles".into(),
            time: client.now().saturating_sub(t0),
        });

        // Step 2 (ordering): per-rank state reset BEFORE the collective
        // rendezvous, so every rank arrives at the rendezvous ready.
        let t0 = client.now();
        match plan.mode {
            RecoveryMode::MinibatchReplay => match my_health {
                GpuHealth::Healthy => {
                    client.reset_in_place()?;
                    client.charge(SimTime::from_millis(1.0));
                }
                GpuHealth::DriverSuspect => {
                    let (snap, bytes) = client.snapshot_persistent_to_host()?;
                    client.reset_with_restart()?;
                    client.restore_persistent_from_host(&snap, bytes)?;
                }
                GpuHealth::Sticky => {
                    client.reset_with_restart()?;
                    // Contents come from the replica sync below.
                }
                GpuHealth::HardwareFailed => {
                    self.hard_healthy_side_or_victim(client, round, i_am_hard, &mut steps)?;
                }
            },
            RecoveryMode::RollForward => {
                if i_am_victim {
                    match my_health {
                        GpuHealth::HardwareFailed => {
                            self.hard_healthy_side_or_victim(client, round, true, &mut steps)?;
                        }
                        GpuHealth::Sticky | GpuHealth::DriverSuspect => {
                            client.reset_with_restart()?;
                        }
                        GpuHealth::Healthy => {
                            client.reset_in_place()?;
                        }
                    }
                }
                // Healthy non-victims keep their in-flight minibatch state.
            }
        }
        // Healthy ranks in a hard round contribute their buffer files +
        // CRIU images (all workers migrate together to the new node set).
        if !plan.hard_victims.is_empty() && !i_am_hard {
            self.hard_healthy_side(client, round, &mut steps)?;
            if plan.mode == RecoveryMode::MinibatchReplay && my_health == GpuHealth::Healthy {
                // Their GPU state was re-read after migration; reset to
                // minibatch start for the replay below.
                client.reset_in_place()?;
            }
        }
        steps.push(RecoveryStep {
            name: "Reset GPU buffers".into(),
            time: client.now().saturating_sub(t0),
        });

        // Step 3: recreate communicators (rendezvous per group — the
        // dominant cost, Table 7). The step is reported at its intrinsic
        // cost (bootstrap time × groups); the virtual clock additionally
        // absorbs barrier waits for straggling peers, which the paper's
        // per-rank measurements exclude.
        let bundle = plan.new_comms[rank.index()].clone();
        let tokens = self.rebind_comms(client, &bundle)?;
        for token in &tokens {
            client.rendezvous_comm(*token)?;
        }
        let comm_init = client.server().gpu().cost_model().comm_init;
        steps.push(RecoveryStep {
            name: "Recreate NCCL communicators".into(),
            time: SimTime::from_secs(comm_init.as_secs() * tokens.len() as f64),
        });

        // Step 4: replica state sync for cells that lost state.
        if let Some(root) = plan.cell_sync.get(&(coord.stage, coord.part)) {
            let t0 = client.now();
            // Use the data-parallel communicator for the copy.
            let dp_token = tokens
                .iter()
                .find(|t| {
                    client
                        .comm_ranks(**t)
                        .map(|rs| rs == self.layout.dp_group_of(rank))
                        .unwrap_or(false)
                })
                .copied()
                .ok_or_else(|| {
                    SimError::Protocol("no data-parallel communicator for replica sync".into())
                })?;
            client.sync_persistent_from_replica(dp_token, *root)?;
            steps.push(RecoveryStep {
                name: "Copy state from replica".into(),
                time: client.now().saturating_sub(t0),
            });
        }

        // Step 5: recreate GPU handles happened inside reset_with_restart;
        // charge a nominal entry for the in-place case to keep reports
        // uniform.
        steps.push(RecoveryStep {
            name: "Recreate GPU handles".into(),
            time: SimTime::from_millis(5.0),
        });
        client.charge(SimTime::from_millis(5.0));

        // Step 6: replay the minibatch device APIs.
        let outcome = match plan.mode {
            RecoveryMode::MinibatchReplay => {
                let t0 = client.now();
                client.replay()?;
                steps.push(RecoveryStep {
                    name: "Replay minibatch APIs".into(),
                    time: client.now().saturating_sub(t0),
                });
                RecoveryOutcome::Retry
            }
            RecoveryMode::RollForward => {
                steps.push(RecoveryStep {
                    name: "Replay minibatch APIs".into(),
                    time: SimTime::ZERO,
                });
                if i_am_victim {
                    RecoveryOutcome::SkipToNextMinibatch
                } else {
                    RecoveryOutcome::Retry
                }
            }
        };

        // Per-rank recovery time = this rank's own work (Σ steps), the
        // paper's Table 5/6 metric; `recovery_start` brackets are kept on
        // the virtual clock for job-level wall time.
        let _ = recovery_start;
        let total = steps.iter().fold(SimTime::ZERO, |acc, s| acc + s.time);
        self.reports.lock().push(RecoveryReport {
            rank,
            mode: plan.mode,
            was_victim: i_am_victim,
            hard: !plan.hard_victims.is_empty(),
            steps,
            total,
        });
        // Re-arm this rank's watchdog for the next failure.
        self.arm_watchdog(client)?;
        self.rank_finish(rank);
        Ok(outcome)
    }
}

impl TransparentEngine {
    fn hard_healthy_side_or_victim(
        &self,
        client: &mut ProxyClient,
        round: u64,
        is_victim: bool,
        steps: &mut Vec<RecoveryStep>,
    ) -> SimResult<()> {
        if is_victim {
            self.hard_victim_side(client, round, steps)
        } else {
            self.hard_healthy_side(client, round, steps)
        }
    }

    /// Helper used by harnesses that allocate replacement GPUs from a
    /// simple counter.
    pub fn counter_gpu_allocator(
        start_id: u32,
        cost: simcore::cost::CostModel,
    ) -> impl FnMut(RankId) -> Gpu + Send {
        let mut next = start_id;
        move |_rank| {
            let g = Gpu::new(GpuId(next), cost.clone());
            next += 1;
            g
        }
    }
}

/// Result of a complete transparent-JIT job run.
#[derive(Debug)]
pub struct TransparentOutcome {
    /// Per-rank loss trajectories (NaN on ranks that never see the loss).
    pub losses: Vec<Vec<f32>>,
    /// Recovery rounds performed.
    pub rounds: u64,
    /// Per-rank recovery reports (Tables 5–7 raw data).
    pub reports: Vec<RecoveryReport>,
    /// Per-rank virtual completion time.
    pub finish_times: Vec<SimTime>,
    /// Per-rank logged device-API counts (steady-state overhead metric).
    pub logged_calls: Vec<u64>,
}

/// Runs a training job under transparent JIT: every rank trains through a
/// [`ProxyClient`] with the engine attached; injected failures are
/// recovered without the "application" (the trainer) ever seeing an
/// error. The launcher loop of the user-level design disappears — that is
/// the point of §4.
pub fn run_transparent_job(
    cfg: dltrain::TrainConfig,
    cost: simcore::cost::CostModel,
    injector: Arc<cluster::FailureInjector>,
    store: Arc<SharedStore>,
    target_iters: u64,
) -> SimResult<TransparentOutcome> {
    run_transparent_job_with(cfg, cost, injector, store, target_iters, 0)
}

/// [`run_transparent_job`] with `extra_comms` additional framework
/// process groups per rank (Megatron/DeepSpeed-style), which recovery
/// must rebuild — the Table 7 communicator-count knob.
pub fn run_transparent_job_with(
    cfg: dltrain::TrainConfig,
    cost: simcore::cost::CostModel,
    injector: Arc<cluster::FailureInjector>,
    store: Arc<SharedStore>,
    target_iters: u64,
    extra_comms: usize,
) -> SimResult<TransparentOutcome> {
    use dltrain::{JobSetup, RankTrainer};
    let layout = cfg.layout;
    let n = layout.world_size();
    let setup = JobSetup::build_with_extras(layout, cost.clone(), cfg.ranks_per_node, extra_comms);
    let world = setup.world.clone();
    let per_rank = setup.per_rank.clone();
    let engine = TransparentEngine::with_extra_comms(
        layout,
        world.clone(),
        store,
        TransparentEngine::counter_gpu_allocator(10_000, cost.clone()),
        extra_comms,
    );
    let engine2 = engine.clone();
    let clock = setup.clock.clone();
    let results = dltrain::run_ranks(n, move |i| {
        let rank = RankId(i as u32);
        let gpu = Gpu::new(GpuId(i as u32), cost.clone());
        let mut client = ProxyClient::new(rank, i, gpu, world.clone());
        engine2.attach(&mut client)?;
        let mut tr = RankTrainer::new(client, cfg.clone(), &per_rank[i], injector.clone())?;
        let losses = tr.train(target_iters)?;
        Ok::<_, SimError>((losses, tr.exec.logged_calls()))
    });
    let mut losses = Vec::with_capacity(n);
    let mut logged = Vec::with_capacity(n);
    for r in results {
        let (l, c) = r?;
        losses.push(l);
        logged.push(c);
    }
    Ok(TransparentOutcome {
        losses,
        rounds: engine.rounds(),
        reports: engine.reports(),
        finish_times: (0..n).map(|i| clock.now(i)).collect(),
        logged_calls: logged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::cost::CostModel;

    #[test]
    fn hard_paths_are_cell_scoped_and_round_scoped() {
        let a = TransparentEngine::hard_path(0, 1, 2, "model.w-abc-s0-n16");
        let b = TransparentEngine::hard_path(0, 1, 3, "model.w-abc-s0-n16");
        let c = TransparentEngine::hard_path(1, 1, 2, "model.w-abc-s0-n16");
        assert_ne!(a, b, "different partitions never collide");
        assert_ne!(a, c, "different rounds never collide");
        assert!(a.contains("s1p2"));
    }

    #[test]
    fn counter_allocator_hands_out_fresh_gpus() {
        let mut alloc = TransparentEngine::counter_gpu_allocator(100, CostModel::v100());
        let a = alloc(RankId(0));
        let b = alloc(RankId(0));
        assert_eq!(a.id, GpuId(100));
        assert_eq!(b.id, GpuId(101));
    }

    #[test]
    fn recovery_mode_labels() {
        assert_ne!(RecoveryMode::MinibatchReplay, RecoveryMode::RollForward);
        let s = RecoveryStep {
            name: "Recreate NCCL communicators".into(),
            time: SimTime::from_secs(1.0),
        };
        assert!(format!("{s:?}").contains("Recreate"));
    }
}

//! Property-based tests for the paper's core: checkpoint-protocol
//! robustness under arbitrary corruption, analytical-model invariants,
//! and recovery correctness under randomized failure coordinates.

use cluster::{FailureInjector, SharedStore};
use dltrain::TrainState;
use jitckpt::analysis::{
    optimal_frequency, wasted_fraction, wasted_rate_jit_transparent, wasted_rate_jit_user,
    wasted_rate_periodic, wasted_rate_periodic_optimal, JobParams,
};
use jitckpt::checkpoint::{self, CkptKind};
use jitckpt::transparent::run_transparent_job;
use proptest::prelude::*;
use simcore::cost::CostModel;
use simcore::failure::{FailureKind, FailureSpec, Phase};
use simcore::layout::ParallelLayout;
use simcore::{JobId, RankId};
use simgpu::BufferTag;
use std::sync::{Arc, Mutex};

static SEQ: Mutex<()> = Mutex::new(());

proptest! {
    #[test]
    fn analysis_c_star_minimizes_wasted_rate(
        o in 0.05f64..120.0,
        f_day in 1e-5f64..0.05,
        r in 0.0f64..300.0,
        n in 1usize..20_000,
        probe in 0.01f64..100.0,
    ) {
        let p = JobParams::new(o, f_day, r, n, 0.5);
        let c_star = optimal_frequency(&p);
        prop_assert!(
            wasted_rate_periodic(&p, c_star) <= wasted_rate_periodic(&p, c_star * probe) + 1e-12
        );
        // Closed form agrees with substitution.
        prop_assert!(
            (wasted_rate_periodic(&p, c_star) - wasted_rate_periodic_optimal(&p)).abs() < 1e-9
        );
    }

    #[test]
    fn jit_dominates_periodic_at_scale(
        o in 0.5f64..60.0,
        r in 0.5f64..60.0,
        m in 0.05f64..5.0,
    ) {
        // For any plausible (o, r, m), by N = 8192 both JIT designs waste
        // less than optimal periodic checkpointing — the paper's Table 8
        // claim, as an invariant.
        let f_day = 2.0 / 992.0;
        let p = JobParams::new(o, f_day, r, 8192, m);
        let periodic = wasted_rate_periodic_optimal(&p);
        prop_assert!(wasted_rate_jit_user(&p, 0.0) < periodic);
        prop_assert!(wasted_rate_jit_transparent(&p, 0.0) < periodic);
    }

    #[test]
    fn wasted_fraction_is_bounded_and_monotone(w1 in 0.0f64..1e6, w2 in 0.0f64..1e6) {
        let f1 = wasted_fraction(w1);
        let f2 = wasted_fraction(w2);
        prop_assert!((0.0..1.0).contains(&f1));
        if w1 < w2 {
            prop_assert!(f1 <= f2);
        }
    }

    #[test]
    fn checkpoint_protocol_rejects_arbitrary_corruption(
        data in proptest::collection::vec(any::<f32>(), 1..128),
        it in 0u64..1000,
        flip in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let store = SharedStore::new();
        let state = TrainState {
            iteration: it,
            opt_t: it as u32,
            buffers: vec![("w".into(), BufferTag::Param, data)],
            logical_bytes: 64,
        };
        checkpoint::write_checkpoint(&store, JobId(0), CkptKind::Jit, RankId(0), 0, 0, 0, &state)
            .unwrap();
        // Small states fit in one shard at the default shard size; flip a
        // bit anywhere in that shard object.
        let path = checkpoint::shard_path(JobId(0), CkptKind::Jit, it, 0, 0, 0, 0);
        let raw = store.get(&path).unwrap();
        let mut bad = raw.to_vec();
        let i = flip.index(bad.len());
        bad[i] ^= 1 << bit;
        let changed = bad != raw.to_vec();
        store.put(&path, bytes::Bytes::from(bad)).unwrap();
        let res = checkpoint::read_checkpoint(&store, JobId(0), CkptKind::Jit, it, 0, 0, 0);
        if changed {
            prop_assert!(res.is_err(), "corruption must not decode cleanly");
        }
    }

    #[test]
    fn assembly_always_picks_a_complete_common_iteration(
        iters_per_cell in proptest::collection::vec(
            proptest::collection::vec(0u64..6, 1..4),
            1..3,
        )
    ) {
        // Arbitrary per-cell iteration sets: assembly must return the max
        // of the intersection, or error when the intersection is empty.
        let store = SharedStore::new();
        let pp = iters_per_cell.len();
        let layout = ParallelLayout::three_d(1, pp, 1);
        let state = |it: u64| TrainState {
            iteration: it,
            opt_t: it as u32,
            buffers: vec![("w".into(), BufferTag::Param, vec![1.0])],
            logical_bytes: 4,
        };
        for (stage, its) in iters_per_cell.iter().enumerate() {
            for it in its {
                checkpoint::write_checkpoint(
                    &store, JobId(0), CkptKind::Jit, RankId(stage as u32), stage, 0, 0, &state(*it),
                ).unwrap();
            }
        }
        let mut common: Option<std::collections::BTreeSet<u64>> = None;
        for its in &iters_per_cell {
            let s: std::collections::BTreeSet<u64> = its.iter().copied().collect();
            common = Some(match common {
                None => s,
                Some(prev) => prev.intersection(&s).copied().collect(),
            });
        }
        let expect = common.unwrap().into_iter().max();
        match (checkpoint::assemble(&store, JobId(0), &layout), expect) {
            (Ok(plan), Some(it)) => {
                for choice in plan.values() {
                    prop_assert_eq!(choice.iteration, it);
                }
            }
            (Err(_), None) => {}
            (Ok(plan), None) => prop_assert!(false, "assembled {plan:?} from empty intersection"),
            (Err(e), Some(it)) => prop_assert!(false, "failed ({e}) though iteration {it} is common"),
        }
    }
}

proptest! {
    // Full end-to-end recovery under randomized failure coordinates is
    // expensive (threads + watchdogs); keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn transparent_recovery_is_exact_for_random_failure_coordinates(
        iteration in 1u64..6,
        phase_idx in 0usize..4,
        victim in 0u32..2,
        kind_idx in 0usize..4,
    ) {
        let _guard = SEQ.lock().unwrap_or_else(|e| e.into_inner());
        let phases = [Phase::Forward, Phase::Backward, Phase::AllReduce, Phase::OptimizerStep];
        let kinds = [
            FailureKind::TransientNetwork,
            FailureKind::DriverCorruption,
            FailureKind::StickyCuda,
            FailureKind::GpuHardware,
        ];
        // Transient network faults only manifest at collectives.
        prop_assume!(!(kind_idx == 0 && phase_idx != 2));
        let cfg = dltrain::TrainConfig::tiny_dp(2);
        let iters = 8;
        let clean = run_transparent_job(
            cfg.clone(),
            CostModel::v100(),
            FailureInjector::none(),
            Arc::new(SharedStore::new()),
            iters,
        ).unwrap().losses;
        let injector = FailureInjector::with_specs(vec![FailureSpec::new(
            iteration, phases[phase_idx], RankId(victim), kinds[kind_idx],
        )]);
        let out = run_transparent_job(
            cfg,
            CostModel::v100(),
            injector,
            Arc::new(SharedStore::new()),
            iters,
        ).unwrap();
        prop_assert_eq!(out.rounds, 1);
        for (a, b) in clean.iter().zip(&out.losses) {
            for (x, y) in a.iter().zip(b) {
                prop_assert!(x.to_bits() == y.to_bits(), "{x} vs {y}");
            }
        }
    }
}

//! End-to-end in-network recovery: a failed rank's state rebuilt from
//! survivors' gradient ledgers + deterministic replay, with ZERO
//! checkpoint-store reads — and the fallback chain (ledger → streamed
//! replica → store) when the in-network coverage is lost.

use cluster::{FailureInjector, SharedStore};
use collectives::{CommWorld, GradLedger, LedgerConfig};
use dltrain::trainer::DEFAULT_BUCKET_BYTES;
use dltrain::{JobSetup, RankTrainer, TrainConfig, TrainState};
use jitckpt::checkpoint::{self, CkptKind};
use jitckpt::stream::{
    self, recv_ledger_history, restore_with_fallback, send_ledger_slices, RecoverySource,
};
use proxy::DirectExecutor;
use simcore::cost::CostModel;
use simcore::time::ClockBoard;
use simcore::{GpuId, JobId, RankId, SimResult};
use simgpu::Gpu;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// These tests spawn many rank threads with real-time stream patience
/// deadlines; serialize them so host load cannot cause false timeouts.
static SEQ: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SEQ.lock().unwrap_or_else(|e| e.into_inner())
}

fn state_bits(s: &TrainState) -> Vec<(String, Vec<u32>)> {
    s.buffers
        .iter()
        .map(|(k, _, d)| (k.clone(), d.iter().map(|f| f.to_bits()).collect()))
        .collect()
}

/// Trains `n` data-parallel ranks with unbounded ledgers attached,
/// returning each rank's final state and ledger.
fn train_with_ledgers(cfg: &TrainConfig, iters: u64) -> Vec<(TrainState, Arc<GradLedger>)> {
    let setup = JobSetup::build(cfg.layout, CostModel::v100(), cfg.ranks_per_node);
    let world = setup.world.clone();
    let per_rank = setup.per_rank.clone();
    let cfg = cfg.clone();
    let n = cfg.layout.world_size();
    let results = dltrain::run_ranks(n, move |i| {
        let gpu = Gpu::new(GpuId(i as u32), CostModel::v100());
        let exec = DirectExecutor::new(RankId(i as u32), i, gpu, world.clone());
        let mut tr = RankTrainer::new(exec, cfg.clone(), &per_rank[i], FailureInjector::none())?;
        tr.set_bucket_bytes(DEFAULT_BUCKET_BYTES);
        let dp = per_rank[i].dp.as_ref().expect("dp group").clone();
        let ledger = tr.attach_grad_ledger(&dp, LedgerConfig::unbounded())?;
        tr.train(iters)?;
        Ok((tr.state_snapshot()?, ledger))
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

/// A fresh recovery-plane world (disjoint from the training world, the
/// way a replacement process gets a fresh bootstrap) where rank `i`
/// drives clock index `i`.
fn recovery_world(n: usize) -> Arc<CommWorld> {
    CommWorld::new(Arc::new(ClockBoard::new(n)), CostModel::v100(), 8)
}

/// Rebuilds the failed rank's state from a received ledger history:
/// deterministic re-init from the config seed, then optimizer-only
/// replay of the reduced gradients.
fn replay_replacement(
    cfg: &TrainConfig,
    failed: usize,
    history: &[Vec<Vec<f32>>],
) -> SimResult<TrainState> {
    let setup = JobSetup::build(cfg.layout, CostModel::v100(), cfg.ranks_per_node);
    let gpu = Gpu::new(GpuId(failed as u32), CostModel::v100());
    let exec = DirectExecutor::new(RankId(failed as u32), failed, gpu, setup.world.clone());
    let mut tr = RankTrainer::new(
        exec,
        cfg.clone(),
        &setup.per_rank[failed],
        FailureInjector::none(),
    )?;
    tr.set_bucket_bytes(DEFAULT_BUCKET_BYTES);
    tr.replay_reduced_history(history)?;
    tr.state_snapshot()
}

#[test]
fn in_network_recovery_touches_no_checkpoint_store_object() {
    let _guard = serial();
    let cfg = TrainConfig::tiny_dp(4);
    let iters = 4u64;
    let ran = train_with_ledgers(&cfg, iters);
    let failed = 0usize;
    let truth = ran[failed].0.clone();

    // A checkpoint exists in the store (as it would in production) so
    // the zero-reads assertion is meaningful, not vacuous.
    let store = Arc::new(SharedStore::new());
    checkpoint::write_checkpoint(
        &store,
        JobId(0),
        CkptKind::Periodic,
        RankId(failed as u32),
        0,
        0,
        failed,
        &truth,
    )
    .unwrap();
    assert_eq!(store.read_count(), 0);

    // Survivors stream their retained ledger slices to the replacement
    // over the recovery plane; the replacement reassembles the full
    // reduced-gradient history and replays it.
    let rw = recovery_world(4);
    let cost = CostModel::v100();
    let survivors = [1usize, 2, 3];
    for &s in &survivors {
        send_ledger_slices(
            &rw,
            &cost,
            RankId(s as u32),
            s,
            RankId(failed as u32),
            true,
            &ran[s].1,
            0..iters,
        )
        .unwrap();
    }
    let srcs: Vec<RankId> = survivors.iter().map(|&s| RankId(s as u32)).collect();
    let (state, source) = restore_with_fallback(
        || {
            let history = recv_ledger_history(
                &rw,
                &cost,
                &srcs,
                RankId(failed as u32),
                failed,
                Duration::from_secs(5),
                0..iters,
            )?;
            replay_replacement(&cfg, failed, &history)
        },
        || panic!("in-network path must not fall through to the stream"),
        || panic!("in-network path must not fall through to the store"),
    )
    .unwrap();

    assert_eq!(source, RecoverySource::InNetwork);
    assert_eq!(state.iteration, truth.iteration);
    assert_eq!(state.opt_t, truth.opt_t);
    assert_eq!(
        state_bits(&state),
        state_bits(&truth),
        "in-network recovered state must be bit-identical"
    );
    assert_eq!(
        store.read_count(),
        0,
        "in-network recovery must read zero checkpoint-store objects"
    );
}

#[test]
fn adjacent_pair_failure_falls_back_to_streamed_replica_then_store() {
    let _guard = serial();
    // The one shape ledgers cannot cover: the failed rank AND its ring
    // successor died together, so the successor's shard lost both
    // holders. The chain must degrade to the PR 5 streamed-replica path,
    // and — when that stream is truncated too — to the store.
    let cfg = TrainConfig::tiny_dp(4);
    let iters = 4u64;
    let ran = train_with_ledgers(&cfg, iters);
    let failed = 0usize;
    let truth = ran[failed].0.clone();
    let cost = CostModel::v100();
    // Ranks 0 and 1 are dead; 2 and 3 survive. Shard 1's owner (1) and
    // predecessor (0) are both gone.
    let survivors = [2usize, 3];
    let srcs: Vec<RankId> = survivors.iter().map(|&s| RankId(s as u32)).collect();

    let store = Arc::new(SharedStore::new());
    checkpoint::write_checkpoint(
        &store,
        JobId(0),
        CkptKind::Jit,
        RankId(2),
        0,
        0,
        2,
        &ran[2].0,
    )
    .unwrap();

    // Leg 2 succeeds: survivor 2 (a healthy data-parallel replica whose
    // state equals the dead rank's) streams its state rank-to-rank.
    {
        let rw = recovery_world(4);
        for &s in &survivors {
            send_ledger_slices(
                &rw,
                &cost,
                RankId(s as u32),
                s,
                RankId(failed as u32),
                true,
                &ran[s].1,
                0..iters,
            )
            .unwrap();
        }
        stream::send_state(
            &rw,
            &cost,
            RankId(2),
            2,
            RankId(failed as u32),
            true,
            &ran[2].0,
            4096,
        )
        .unwrap();
        let reads_before = store.read_count();
        let (state, source) = restore_with_fallback(
            || {
                let history = recv_ledger_history(
                    &rw,
                    &cost,
                    &srcs,
                    RankId(failed as u32),
                    failed,
                    Duration::from_secs(5),
                    0..iters,
                )?;
                replay_replacement(&cfg, failed, &history)
            },
            || {
                stream::recv_state(
                    &rw,
                    &cost,
                    RankId(2),
                    RankId(failed as u32),
                    failed,
                    Duration::from_secs(5),
                )
            },
            || panic!("streamed replica succeeded; the store must stay untouched"),
        )
        .unwrap();
        assert_eq!(source, RecoverySource::StreamedReplica);
        assert_eq!(state_bits(&state), state_bits(&truth));
        assert_eq!(store.read_count(), reads_before);
    }

    // Leg 2 also dies (replica truncates its stream mid-transfer): the
    // chain lands on the store round-trip.
    {
        let rw = recovery_world(4);
        for &s in &survivors {
            send_ledger_slices(
                &rw,
                &cost,
                RankId(s as u32),
                s,
                RankId(failed as u32),
                true,
                &ran[s].1,
                0..iters,
            )
            .unwrap();
        }
        stream::send_state_truncated(
            &rw,
            &cost,
            RankId(2),
            2,
            RankId(failed as u32),
            true,
            &ran[2].0,
            4096,
            1,
        )
        .unwrap();
        let (state, source) = restore_with_fallback(
            || {
                let history = recv_ledger_history(
                    &rw,
                    &cost,
                    &srcs,
                    RankId(failed as u32),
                    failed,
                    Duration::from_secs(5),
                    0..iters,
                )?;
                replay_replacement(&cfg, failed, &history)
            },
            || {
                stream::recv_state(
                    &rw,
                    &cost,
                    RankId(2),
                    RankId(failed as u32),
                    failed,
                    Duration::from_millis(100),
                )
            },
            || {
                jitckpt::restore::load_for_rank_parallel(
                    &store,
                    JobId(0),
                    &cfg.layout,
                    RankId(failed as u32),
                    &jitckpt::restore::RestoreConfig::default(),
                )
                .map(|(state, _, _)| state)
            },
        )
        .unwrap();
        assert_eq!(source, RecoverySource::Store);
        assert_eq!(state_bits(&state), state_bits(&truth));
        assert!(store.read_count() > 0, "the store leg must read the store");
    }
}

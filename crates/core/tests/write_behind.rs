//! Write-behind pipeline semantics: durability equivalence with the
//! blocking writer, completion ordering, failure invisibility, and
//! per-job gate behavior.

use bytes::Bytes;
use cluster::{SharedStore, StorageBackend};
use dltrain::TrainState;
use jitckpt::checkpoint::{self, CkptKind, ShardConfig, ShardPlan};
use jitckpt::pipeline::{JobGate, WriteBehind, WriteBehindConfig};
use simcore::{JobId, RankId, SimResult};
use simgpu::BufferTag;
use std::sync::Arc;

fn state(it: u64, elems: usize) -> TrainState {
    let data: Vec<f32> = (0..elems).map(|i| (i as f32) * 0.5 + it as f32).collect();
    TrainState {
        iteration: it,
        opt_t: it as u32,
        buffers: vec![
            ("w".into(), BufferTag::Param, data.clone()),
            ("m".into(), BufferTag::OptimState, data),
        ],
        logical_bytes: (elems * 8) as u64,
    }
}

fn small() -> ShardConfig {
    ShardConfig {
        shard_bytes: 256,
        workers: 2,
        delta: true,
        ..ShardConfig::default()
    }
}

fn submit(
    wb: &WriteBehind,
    store: &Arc<dyn StorageBackend>,
    s: &TrainState,
    cfg: &ShardConfig,
    gate: Option<&Arc<JobGate>>,
) -> jitckpt::pipeline::CkptTicket {
    let plan = ShardPlan::stage(store, JobId(0), CkptKind::Jit, RankId(0), 0, 0, 0, s, cfg);
    wb.submit_to(store, &plan, gate)
}

/// Same state through blocking writer and write-behind pipeline ⇒ the
/// reader sees bit-identical checkpoints from both.
#[test]
fn write_behind_matches_blocking_writer_bit_for_bit() -> SimResult<()> {
    let cfg = small();
    let s = state(7, 300);

    let blocking = SharedStore::new();
    checkpoint::write_checkpoint_with(
        &blocking,
        JobId(0),
        CkptKind::Jit,
        RankId(0),
        0,
        0,
        0,
        &s,
        &cfg,
    )?;
    let (from_blocking, _) =
        checkpoint::read_checkpoint(&blocking, JobId(0), CkptKind::Jit, 7, 0, 0, 0)?;

    let behind: Arc<dyn StorageBackend> = Arc::new(SharedStore::new());
    let wb = WriteBehind::new(behind.clone(), WriteBehindConfig::default());
    submit(&wb, &behind, &s, &cfg, None).wait()?;
    let (from_behind, _) =
        checkpoint::read_checkpoint(&behind, JobId(0), CkptKind::Jit, 7, 0, 0, 0)?;

    assert_eq!(from_blocking, from_behind);
    assert_eq!(from_behind, s);
    Ok(())
}

/// Pipelined generations with delta: later submissions reuse earlier
/// shards, a zero-upload checkpoint still finalizes, and every
/// generation remains readable.
#[test]
fn pipelined_delta_generations_round_trip() -> SimResult<()> {
    let cfg = small();
    let store: Arc<dyn StorageBackend> = Arc::new(SharedStore::new());
    let wb = WriteBehind::new(store.clone(), WriteBehindConfig::default());

    let s1 = state(1, 300);
    let mut s2 = s1.clone();
    s2.iteration = 2; // bit-identical buffers ⇒ all shards reuse
    let s3 = state(3, 300);

    let t1 = submit(&wb, &store, &s1, &cfg, None);
    t1.wait()?; // s2 must see s1's sidecar to delta against it
    let t2 = submit(&wb, &store, &s2, &cfg, None);
    t2.wait()?;
    let t3 = submit(&wb, &store, &s3, &cfg, None);
    t3.wait()?;

    for (it, want) in [(1, &s1), (2, &s2), (3, &s3)] {
        let (got, _) = checkpoint::read_checkpoint(&store, JobId(0), CkptKind::Jit, it, 0, 0, 0)?;
        assert_eq!(&got, want, "iteration {it}");
    }
    Ok(())
}

/// A backend that rejects puts under an armed prefix.
struct RejectingStore {
    inner: SharedStore,
    reject_prefix: String,
}

impl StorageBackend for RejectingStore {
    fn put(&self, path: &str, data: Bytes) -> SimResult<()> {
        if path.starts_with(&self.reject_prefix) && !path.ends_with("/meta") {
            return Err(simcore::SimError::Storage(format!("{path}: injected")));
        }
        self.inner.put(path, data)
    }
    fn get(&self, path: &str) -> SimResult<Bytes> {
        self.inner.get(path)
    }
    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }
    fn delete(&self, path: &str) {
        self.inner.delete(path)
    }
    fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.list(prefix)
    }
    fn delete_prefix(&self, prefix: &str) -> usize {
        self.inner.delete_prefix(prefix)
    }
    fn read_count(&self) -> u64 {
        self.inner.read_count()
    }
    fn object_count(&self) -> usize {
        self.inner.len()
    }
    fn kind(&self) -> &'static str {
        "rejecting"
    }
}

/// A failed shard put surfaces on the ticket AND suppresses the
/// completion sidecar — the half-written checkpoint stays invisible.
#[test]
fn failed_shard_put_suppresses_sidecar() {
    let cfg = small();
    let store: Arc<dyn StorageBackend> = Arc::new(RejectingStore {
        inner: SharedStore::new(),
        reject_prefix: "ckpt/".into(),
    });
    let wb = WriteBehind::new(store.clone(), WriteBehindConfig::default());
    let s = state(5, 300);
    let ticket = submit(&wb, &store, &s, &cfg, None);
    assert!(ticket.wait().is_err());
    let meta = checkpoint::read_meta(&store, JobId(0), CkptKind::Jit, 5, 0, 0, 0);
    assert!(meta.is_err(), "sidecar must not exist after a failed shard");
    assert_eq!(
        wb.stats().failed.load(std::sync::atomic::Ordering::Relaxed),
        1
    );
}

/// The gate bounds in-flight bytes but always admits an oversized
/// checkpoint when idle, and drains back to zero.
#[test]
fn job_gate_admits_oversized_and_drains() -> SimResult<()> {
    let cfg = small();
    let store: Arc<dyn StorageBackend> = Arc::new(SharedStore::new());
    let wb = WriteBehind::new(store.clone(), WriteBehindConfig::default());
    let gate = JobGate::new(64); // smaller than one shard
    let s = state(9, 300);
    submit(&wb, &store, &s, &cfg, Some(&gate)).wait()?;
    assert_eq!(gate.in_flight(), 0, "gate must drain after durability");
    let (got, _) = checkpoint::read_checkpoint(&store, JobId(0), CkptKind::Jit, 9, 0, 0, 0)?;
    assert_eq!(got, s);
    Ok(())
}

//! End-to-end recovery tests: the paper's semantics-preservation claim —
//! loss trajectories with failure + JIT recovery must exactly match the
//! failure-free run (§6.2) — across both designs and every failure class
//! of Table 1.

use cluster::{Cluster, FailureInjector, Scheduler, SharedStore};
use jitckpt::transparent::run_transparent_job;
use jitckpt::user_level::{run_user_level_job, JitUserConfig};
use simcore::cost::{CostModel, GpuGeneration};
use simcore::failure::{FailureKind, FailureSpec, Phase};
use simcore::layout::ParallelLayout;
use simcore::RankId;
use std::sync::Arc;
use std::sync::Mutex;

/// Recovery tests spawn many rank + watchdog threads with real-time hang
/// timeouts; serialize them so host load cannot cause false hang
/// detections.
static SEQ: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SEQ.lock().unwrap_or_else(|e| e.into_inner())
}

fn baseline_losses(cfg: &dltrain::TrainConfig, iters: u64) -> Vec<Vec<f32>> {
    run_transparent_job(
        cfg.clone(),
        CostModel::v100(),
        FailureInjector::none(),
        Arc::new(SharedStore::new()),
        iters,
    )
    .unwrap()
    .losses
}

fn assert_losses_match(a: &[Vec<f32>], b: &[Vec<f32>]) {
    assert_eq!(a.len(), b.len());
    for (r, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.len(), y.len(), "rank {r} lengths");
        for (i, (lx, ly)) in x.iter().zip(y).enumerate() {
            let same = (lx.is_nan() && ly.is_nan()) || lx == ly;
            assert!(same, "rank {r} iter {i}: {lx} vs {ly}");
        }
    }
}

#[test]
fn user_level_recovers_sticky_error_with_exact_losses() {
    let _guard = serial();
    let cfg = dltrain::TrainConfig::tiny_dp(2);
    let iters = 10;
    let clean = baseline_losses(&cfg, iters);
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        4,
        Phase::Backward,
        RankId(1),
        FailureKind::StickyCuda,
    )]);
    let scheduler = Arc::new(Scheduler::new(Cluster::new(GpuGeneration::V100_32G, 2)));
    let store = Arc::new(SharedStore::new());
    let out = run_user_level_job(
        cfg,
        CostModel::v100(),
        injector,
        scheduler,
        store,
        JitUserConfig::default(),
        iters,
    )
    .unwrap();
    assert_eq!(out.restarts, 1);
    assert!(
        !out.events.is_empty(),
        "a JIT checkpoint must have happened"
    );
    assert_losses_match(&out.losses, &clean);
}

#[test]
fn user_level_recovers_hard_gpu_error_and_excludes_the_gpu() {
    let _guard = serial();
    let cfg = dltrain::TrainConfig::tiny_dp(2);
    let iters = 8;
    let clean = baseline_losses(&cfg, iters);
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        3,
        Phase::Forward,
        RankId(0),
        FailureKind::GpuHardware,
    )]);
    let scheduler = Arc::new(Scheduler::new(Cluster::new(GpuGeneration::V100_32G, 2)));
    let store = Arc::new(SharedStore::new());
    let out = run_user_level_job(
        cfg,
        CostModel::v100(),
        injector,
        scheduler.clone(),
        store,
        JitUserConfig::default(),
        iters,
    )
    .unwrap();
    assert_eq!(out.restarts, 1);
    assert_losses_match(&out.losses, &clean);
}

#[test]
fn streamed_replica_restore_is_exact_and_reads_the_store_once() {
    let _guard = serial();
    // Same sticky failure twice: once with stream recovery (the default)
    // and once with every rank paying the §3.3 store round-trip. Both
    // must reproduce the failure-free trajectory exactly, and the
    // streamed run must touch the store strictly less (one payload read
    // per cell instead of one per rank).
    let cfg = dltrain::TrainConfig::tiny_dp(2);
    let iters = 10;
    let clean = baseline_losses(&cfg, iters);
    let specs = vec![FailureSpec::new(
        4,
        Phase::Backward,
        RankId(1),
        FailureKind::StickyCuda,
    )];
    let mut reads = Vec::new();
    for streamed in [true, false] {
        let scheduler = Arc::new(Scheduler::new(Cluster::new(GpuGeneration::V100_32G, 2)));
        let store = Arc::new(SharedStore::new());
        let out = run_user_level_job(
            cfg.clone(),
            CostModel::v100(),
            FailureInjector::with_specs(specs.clone()),
            scheduler,
            store.clone(),
            JitUserConfig {
                stream_recovery: streamed,
                ..JitUserConfig::default()
            },
            iters,
        )
        .unwrap();
        assert_eq!(out.restarts, 1, "streamed={streamed}");
        assert!(
            out.events.iter().any(|e| e.restore_time.as_secs() > 0.0),
            "a restore must have happened (streamed={streamed})"
        );
        assert_losses_match(&out.losses, &clean);
        reads.push(store.read_count());
    }
    assert!(
        reads[0] < reads[1],
        "streaming must cut store reads: {} streamed vs {} store-only",
        reads[0],
        reads[1]
    );
}

#[test]
fn replica_dying_mid_stream_falls_back_to_the_store() {
    let _guard = serial();
    // The checkpoint owner starts streaming its state but "dies" after
    // the preamble frame. The receiving replica must time out, fall back
    // to the store round-trip, and still land on the exact failure-free
    // trajectory.
    let cfg = dltrain::TrainConfig::tiny_dp(2);
    let iters = 10;
    let clean = baseline_losses(&cfg, iters);
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        4,
        Phase::Backward,
        RankId(1),
        FailureKind::StickyCuda,
    )]);
    let scheduler = Arc::new(Scheduler::new(Cluster::new(GpuGeneration::V100_32G, 2)));
    let store = Arc::new(SharedStore::new());
    let out = run_user_level_job(
        cfg,
        CostModel::v100(),
        injector,
        scheduler,
        store,
        JitUserConfig {
            stream_truncate: Some(1),
            stream_patience: std::time::Duration::from_millis(100),
            ..JitUserConfig::default()
        },
        iters,
    )
    .unwrap();
    assert_eq!(out.restarts, 1);
    assert!(
        out.events.iter().any(|e| e.restore_time.as_secs() > 0.0),
        "the fallback restore must be recorded"
    );
    assert_losses_match(&out.losses, &clean);
}

#[test]
fn transparent_recovers_transient_network_fault() {
    let _guard = serial();
    let cfg = dltrain::TrainConfig::tiny_dp(2);
    let iters = 8;
    let clean = baseline_losses(&cfg, iters);
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        3,
        Phase::AllReduce,
        RankId(0),
        FailureKind::TransientNetwork,
    )]);
    let out = run_transparent_job(
        cfg,
        CostModel::v100(),
        injector,
        Arc::new(SharedStore::new()),
        iters,
    )
    .unwrap();
    assert_eq!(out.rounds, 1, "one recovery round");
    assert_losses_match(&out.losses, &clean);
    // Every rank filed a report with the Table 7 steps.
    assert_eq!(out.reports.len(), 2);
    for r in &out.reports {
        assert!(r.steps.iter().any(|s| s.name.contains("Recreate NCCL")));
    }
}

#[test]
fn transparent_recovers_sticky_error_via_replica_copy() {
    let _guard = serial();
    let cfg = dltrain::TrainConfig::tiny_dp(2);
    let iters = 8;
    let clean = baseline_losses(&cfg, iters);
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        4,
        Phase::Backward,
        RankId(1),
        FailureKind::StickyCuda,
    )]);
    let out = run_transparent_job(
        cfg,
        CostModel::v100(),
        injector,
        Arc::new(SharedStore::new()),
        iters,
    )
    .unwrap();
    assert_eq!(out.rounds, 1);
    assert_losses_match(&out.losses, &clean);
    // The victim's recovery includes the replica state copy.
    let victim = out.reports.iter().find(|r| r.rank == RankId(1)).unwrap();
    assert!(victim.was_victim);
    assert!(victim
        .steps
        .iter()
        .any(|s| s.name.contains("Copy state from replica")));
}

#[test]
fn transparent_recovers_driver_corruption_via_host_roundtrip() {
    let _guard = serial();
    let cfg = dltrain::TrainConfig::tiny_dp(2);
    let iters = 8;
    let clean = baseline_losses(&cfg, iters);
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        2,
        Phase::AllReduce,
        RankId(0),
        FailureKind::DriverCorruption,
    )]);
    let out = run_transparent_job(
        cfg,
        CostModel::v100(),
        injector,
        Arc::new(SharedStore::new()),
        iters,
    )
    .unwrap();
    assert_eq!(out.rounds, 1);
    assert_losses_match(&out.losses, &clean);
}

#[test]
fn transparent_rolls_forward_on_optimizer_step_failure() {
    let _guard = serial();
    let cfg = dltrain::TrainConfig::tiny_dp(2);
    let iters = 8;
    let clean = baseline_losses(&cfg, iters);
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        3,
        Phase::OptimizerStep,
        RankId(0),
        FailureKind::StickyCuda,
    )]);
    let out = run_transparent_job(
        cfg,
        CostModel::v100(),
        injector,
        Arc::new(SharedStore::new()),
        iters,
    )
    .unwrap();
    assert_eq!(out.rounds, 1);
    assert_losses_match(&out.losses, &clean);
    let victim = out.reports.iter().find(|r| r.rank == RankId(0)).unwrap();
    assert_eq!(victim.mode, jitckpt::transparent::RecoveryMode::RollForward);
}

#[test]
fn transparent_recovers_hard_error_by_migration() {
    let _guard = serial();
    let cfg = dltrain::TrainConfig::tiny_dp(2);
    let iters = 8;
    let clean = baseline_losses(&cfg, iters);
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        3,
        Phase::Forward,
        RankId(1),
        FailureKind::GpuHardware,
    )]);
    let out = run_transparent_job(
        cfg,
        CostModel::v100(),
        injector,
        Arc::new(SharedStore::new()),
        iters,
    )
    .unwrap();
    assert_eq!(out.rounds, 1);
    assert_losses_match(&out.losses, &clean);
    let victim = out.reports.iter().find(|r| r.rank == RankId(1)).unwrap();
    assert!(victim.hard);
}

#[test]
fn transparent_3d_job_recovers_with_exact_losses() {
    let _guard = serial();
    let mut cfg = dltrain::TrainConfig::tiny_dp(1);
    cfg.layout = ParallelLayout::three_d(2, 2, 2);
    let iters = 6;
    let clean = baseline_losses(&cfg, iters);
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        2,
        Phase::Backward,
        RankId(5),
        FailureKind::StickyCuda,
    )]);
    let out = run_transparent_job(
        cfg,
        CostModel::v100(),
        injector,
        Arc::new(SharedStore::new()),
        iters,
    )
    .unwrap();
    assert_eq!(out.rounds, 1);
    assert_losses_match(&out.losses, &clean);
}

#[test]
fn transparent_recovers_simultaneous_multi_gpu_failures() {
    let _guard = serial();
    // Table 1 says "single/MULTIPLE errors": two ranks fail in the same
    // round (as a node failure would produce), with enough data-parallel
    // replicas left to recover both.
    let cfg = dltrain::TrainConfig::tiny_dp(4);
    let iters = 8;
    let clean = baseline_losses(&cfg, iters);
    let injector = FailureInjector::with_specs(vec![
        FailureSpec::new(3, Phase::Backward, RankId(0), FailureKind::StickyCuda),
        FailureSpec::new(3, Phase::Backward, RankId(2), FailureKind::StickyCuda),
    ]);
    let out = run_transparent_job(
        cfg,
        CostModel::v100(),
        injector,
        Arc::new(SharedStore::new()),
        iters,
    )
    .unwrap();
    assert_eq!(out.rounds, 1, "one recovery round handles both victims");
    assert_losses_match(&out.losses, &clean);
    let victims = out.reports.iter().filter(|r| r.was_victim).count();
    assert_eq!(victims, 2);
}

#[test]
fn transparent_recovers_node_failure_via_migration_of_all_its_ranks() {
    let _guard = serial();
    // A node failure kills every GPU on the node. With 4 DP replicas and
    // ranks 0-1 sharing the failed node, both migrate and restore from
    // the surviving replicas' buffer files.
    let cfg = dltrain::TrainConfig::tiny_dp(4);
    let iters = 8;
    let clean = baseline_losses(&cfg, iters);
    let injector = FailureInjector::with_specs(vec![
        FailureSpec::new(3, Phase::Forward, RankId(0), FailureKind::NodeFailure),
        FailureSpec::new(3, Phase::Forward, RankId(1), FailureKind::NodeFailure),
    ]);
    let out = run_transparent_job(
        cfg,
        CostModel::v100(),
        injector,
        Arc::new(SharedStore::new()),
        iters,
    )
    .unwrap();
    assert_eq!(out.rounds, 1);
    assert_losses_match(&out.losses, &clean);
    let hard = out.reports.iter().filter(|r| r.hard).count();
    assert_eq!(hard, 4, "every rank participates in the hard round");
}

#[test]
fn no_replica_means_no_transparent_recovery() {
    let _guard = serial();
    // dp = 1: a sticky error has no replica to restore from; the engine
    // must fail loudly rather than resume with corrupt state.
    let cfg = dltrain::TrainConfig::tiny_dp(1);
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        2,
        Phase::Backward,
        RankId(0),
        FailureKind::StickyCuda,
    )]);
    let res = run_transparent_job(
        cfg,
        CostModel::v100(),
        injector,
        Arc::new(SharedStore::new()),
        5,
    );
    assert!(res.is_err(), "recovery without replicas must not succeed");
}

#[test]
fn torn_jit_checkpoint_falls_back_to_scratch_restart() {
    let _guard = serial();
    // The healthy rank dies *while writing* its JIT checkpoint (torn
    // payload). Assembly must reject the file and the job restarts from
    // scratch — slower, but still bit-exact.
    let cfg = dltrain::TrainConfig::tiny_dp(2);
    let iters = 7;
    let clean = baseline_losses(&cfg, iters);
    let injector = FailureInjector::with_specs(vec![FailureSpec::new(
        3,
        Phase::Backward,
        RankId(0),
        FailureKind::StickyCuda,
    )]);
    let scheduler = Arc::new(Scheduler::new(Cluster::new(GpuGeneration::V100_32G, 2)));
    let store = Arc::new(SharedStore::new());
    // Arm the torn write: the very next store put (the JIT payload) keeps
    // only half its bytes.
    store.fail_next_write(0.5);
    let out = run_user_level_job(
        cfg,
        CostModel::v100(),
        injector,
        scheduler,
        store.clone(),
        JitUserConfig::default(),
        iters,
    )
    .unwrap();
    assert_eq!(out.restarts, 1);
    // No restore event (nothing valid to restore from)...
    assert!(out.events.iter().all(|e| e.restore_time.as_secs() == 0.0));
    // ...yet the trajectory is still exactly the failure-free one.
    assert_losses_match(&out.losses, &clean);
}

#[test]
fn catastrophic_failure_falls_back_to_periodic_checkpoint() {
    let _guard = serial();
    // §6.3: JIT + low-frequency periodic checkpointing compose. When a
    // catastrophic failure takes out EVERY data-parallel replica at once
    // (no JIT checkpoint possible), the job must restart from the last
    // periodic checkpoint instead of from scratch.
    use jitckpt::checkpoint::{self, CkptKind};
    let cfg = dltrain::TrainConfig::tiny_dp(2);
    let iters = 8;
    let clean = baseline_losses(&cfg, iters);
    // Produce a consistent periodic checkpoint at iteration 3 by running
    // a clean prefix and snapshotting.
    let store = Arc::new(SharedStore::new());
    {
        use dltrain::{JobSetup, RankTrainer};
        use proxy::DirectExecutor;
        let setup = JobSetup::build(cfg.layout, CostModel::v100(), cfg.ranks_per_node);
        let world = setup.world.clone();
        let per_rank = setup.per_rank.clone();
        let cfg2 = cfg.clone();
        let store2 = store.clone();
        let results = dltrain::run_ranks(2, move |i| {
            let gpu = simgpu::Gpu::new(simcore::GpuId(i as u32), CostModel::v100());
            let exec = DirectExecutor::new(RankId(i as u32), i, gpu, world.clone());
            let mut tr =
                RankTrainer::new(exec, cfg2.clone(), &per_rank[i], FailureInjector::none())?;
            tr.train(3)?;
            let state = tr.state_snapshot()?;
            checkpoint::write_checkpoint(
                &store2,
                simcore::JobId(0),
                CkptKind::Periodic,
                RankId(i as u32),
                0,
                0,
                i,
                &state,
            )?;
            Ok::<_, simcore::SimError>(())
        });
        for r in results {
            r.unwrap();
        }
    }
    // Both ranks die in the same minibatch: no healthy replica, no JIT
    // checkpoint, no quorum.
    let injector = FailureInjector::with_specs(vec![
        FailureSpec::new(5, Phase::Backward, RankId(0), FailureKind::GpuHardware),
        FailureSpec::new(5, Phase::Backward, RankId(1), FailureKind::GpuHardware),
    ]);
    let scheduler = Arc::new(Scheduler::new(Cluster::new(GpuGeneration::V100_32G, 2)));
    let out = run_user_level_job(
        cfg,
        CostModel::v100(),
        injector,
        scheduler,
        store.clone(),
        JitUserConfig::default(),
        iters,
    )
    .unwrap();
    assert_eq!(out.restarts, 1);
    // The restore events reference the periodic checkpoint's iteration.
    let restores: Vec<_> = out
        .events
        .iter()
        .filter(|e| e.restore_time.as_secs() > 0.0)
        .collect();
    assert!(!restores.is_empty(), "must restore from the periodic ckpt");
    assert!(restores.iter().all(|e| e.iteration == 3));
    // The launcher resumes from the seeded checkpoint, so iterations 0–2
    // ran only in the prefix job; from 3 on, the post-catastrophe
    // trajectory must match the failure-free run exactly (iterations
    // 3..5 are the re-executed periodic-recovery tax JIT avoids).
    for (rank, clean_rank) in clean.iter().enumerate().take(2) {
        for it in 0..3 {
            assert!(out.losses[rank][it].is_nan());
        }
        for (it, clean_loss) in clean_rank.iter().enumerate().take(iters as usize).skip(3) {
            assert_eq!(
                out.losses[rank][it].to_bits(),
                clean_loss.to_bits(),
                "rank {rank} iter {it}"
            );
        }
    }
}

//! Property-based tests of the sharded checkpoint format: round-trips
//! and failure reporting under per-shard truncation, per-shard bit-rot,
//! missing delta bases, and shard-count drift between base and delta.

use cluster::SharedStore;
use dltrain::TrainState;
use jitckpt::checkpoint::{self, CkptKind, ShardConfig};
use proptest::prelude::*;
use simcore::{JobId, RankId};
use simgpu::BufferTag;

fn state_from(data: Vec<f32>, it: u64) -> TrainState {
    TrainState {
        iteration: it,
        opt_t: it as u32,
        buffers: vec![("w".into(), BufferTag::Param, data)],
        logical_bytes: 64,
    }
}

fn cfg(shard_bytes: usize, workers: usize) -> ShardConfig {
    ShardConfig {
        shard_bytes,
        workers,
        delta: true,
        ..ShardConfig::default()
    }
}

fn write(store: &SharedStore, s: &TrainState, c: &ShardConfig) {
    checkpoint::write_checkpoint_with(store, JobId(0), CkptKind::Jit, RankId(0), 0, 0, 0, s, c)
        .unwrap();
}

fn read(store: &SharedStore, it: u64) -> Result<TrainState, simcore::SimError> {
    checkpoint::read_checkpoint(store, JobId(0), CkptKind::Jit, it, 0, 0, 0).map(|(s, _)| s)
}

proptest! {
    #[test]
    fn round_trip_survives_any_shard_size_and_pool_width(
        data in proptest::collection::vec(any::<f32>(), 1..256),
        shard_bytes in 1usize..512,
        workers in 1usize..6,
        it in 0u64..100,
    ) {
        let store = SharedStore::new();
        let s = state_from(data, it);
        write(&store, &s, &cfg(shard_bytes, workers));
        let back = read(&store, it).unwrap();
        prop_assert_eq!(back.iteration, s.iteration);
        prop_assert_eq!(back.buffers.len(), s.buffers.len());
        for ((_, _, a), (_, _, b)) in back.buffers.iter().zip(&s.buffers) {
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn truncating_any_one_shard_is_reported_by_its_index(
        data in proptest::collection::vec(any::<f32>(), 16..128),
        victim in any::<proptest::sample::Index>(),
        keep in 0.0f64..0.95,
    ) {
        let store = SharedStore::new();
        let s = state_from(data, 7);
        let c = cfg(64, 2);
        write(&store, &s, &c);
        let meta = checkpoint::read_meta(&store, JobId(0), CkptKind::Jit, 7, 0, 0, 0).unwrap();
        let idx = victim.index(meta.shards.len()) as u32;
        let path = checkpoint::shard_path(JobId(0), CkptKind::Jit, 7, 0, 0, 0, idx);
        let obj = store.get(&path).unwrap();
        prop_assume!(!obj.is_empty());
        let cut = ((obj.len() as f64) * keep) as usize;
        prop_assume!(cut < obj.len());
        store.put(&path, obj.slice(..cut)).unwrap();
        let err = read(&store, 7).unwrap_err();
        let msg = format!("{err}");
        prop_assert!(
            msg.contains(&format!("shard {idx}: truncated")),
            "blame must name shard {idx}: {msg}"
        );
        prop_assert!(
            msg.contains(&format!("1 of {} shards invalid", meta.shards.len())),
            "siblings must stay valid: {msg}"
        );
    }

    #[test]
    fn bit_rot_in_any_one_shard_is_reported_by_its_index(
        data in proptest::collection::vec(any::<f32>(), 16..128),
        victim in any::<proptest::sample::Index>(),
    ) {
        let store = SharedStore::new();
        let s = state_from(data, 7);
        write(&store, &s, &cfg(64, 2));
        let meta = checkpoint::read_meta(&store, JobId(0), CkptKind::Jit, 7, 0, 0, 0).unwrap();
        let idx = victim.index(meta.shards.len()) as u32;
        let path = checkpoint::shard_path(JobId(0), CkptKind::Jit, 7, 0, 0, 0, idx);
        prop_assume!(!store.get(&path).unwrap().is_empty());
        store.corrupt(&path).unwrap();
        let err = read(&store, 7).unwrap_err();
        let msg = format!("{err}");
        prop_assert!(
            msg.contains(&format!("shard {idx}: checksum mismatch")),
            "blame must name shard {idx}: {msg}"
        );
        prop_assert!(
            msg.contains(&format!("1 of {} shards invalid", meta.shards.len())),
            "siblings must stay valid: {msg}"
        );
    }

    #[test]
    fn deleting_a_referenced_base_shard_fails_the_delta_read_only_by_that_shard(
        data in proptest::collection::vec(-100.0f32..100.0, 32..128),
        touch in any::<proptest::sample::Index>(),
    ) {
        let store = SharedStore::new();
        let mut s = state_from(data, 7);
        let c = cfg(64, 2);
        write(&store, &s, &c);
        // One element changes; everything else should become delta refs.
        let i = touch.index(s.buffers[0].2.len());
        s.buffers[0].2[i] += 1.0;
        s.iteration = 8;
        s.opt_t = 8;
        write(&store, &s, &c);
        let meta = checkpoint::read_meta(&store, JobId(0), CkptKind::Jit, 8, 0, 0, 0).unwrap();
        let reffed: Vec<u32> = meta
            .shards
            .iter()
            .filter(|m| m.base_iteration == Some(7))
            .map(|m| m.index)
            .collect();
        prop_assume!(!reffed.is_empty());
        // Sanity: the delta checkpoint reads back exactly while bases live.
        prop_assert_eq!(read(&store, 8).unwrap().buffers, s.buffers.clone());
        // Kill one referenced base object: the read must fail, blaming
        // exactly that shard as a missing delta base.
        let dead = reffed[0];
        store.delete(checkpoint::shard_path(JobId(0), CkptKind::Jit, 7, 0, 0, 0, dead));
        let err = read(&store, 8).unwrap_err();
        let msg = format!("{err}");
        prop_assert!(
            msg.contains(&format!("shard {dead}: missing delta base")),
            "{msg}"
        );
        prop_assert!(
            msg.contains(&format!("1 of {} shards invalid", meta.shards.len())),
            "{msg}"
        );
    }

    #[test]
    fn shard_count_drift_between_base_and_next_disables_reuse(
        data in proptest::collection::vec(-100.0f32..100.0, 32..96),
        grow in 1usize..64,
    ) {
        let store = SharedStore::new();
        let mut s = state_from(data, 7);
        let c = cfg(64, 2);
        write(&store, &s, &c);
        let base_meta = checkpoint::read_meta(&store, JobId(0), CkptKind::Jit, 7, 0, 0, 0).unwrap();
        // Grow the state so the stream length (usually the shard count)
        // changes; delta must never reuse across a layout drift.
        s.buffers[0].2.extend(std::iter::repeat_n(1.0f32, grow));
        s.iteration = 8;
        s.opt_t = 8;
        write(&store, &s, &c);
        let meta = checkpoint::read_meta(&store, JobId(0), CkptKind::Jit, 8, 0, 0, 0).unwrap();
        if meta.shards.len() != base_meta.shards.len() {
            prop_assert!(
                meta.shards.iter().all(|m| m.base_iteration.is_none()),
                "no refs across a shard-count change"
            );
        }
        // Either way the new checkpoint is self-consistent.
        prop_assert_eq!(read(&store, 8).unwrap().buffers, s.buffers);
        // And the old one remains readable: delta writes never mutate the
        // base checkpoint's objects.
        prop_assert_eq!(read(&store, 7).unwrap().iteration, 7);
    }
}

//! Property-based equivalence of the parallel restore plane and the
//! serial reader: across random shard sizes, delta depths, pool widths,
//! and injected faults (lost, torn, bit-rotted, slow shards), the
//! parallel path must return bit-identical state and metadata on
//! success and the *same error text* on failure — including the
//! aggregated blame that names every bad shard by index.

use bytes::Bytes;
use cluster::{SharedStore, StorageBackend};
use dltrain::TrainState;
use jitckpt::checkpoint::{self, CkptKind, ShardConfig};
use jitckpt::restore::{read_checkpoint_parallel, RestoreConfig};
use proptest::prelude::*;
use simcore::{JobId, RankId, SimResult};
use simgpu::BufferTag;
use std::collections::BTreeSet;
use std::time::Duration;

fn state_from(data: Vec<f32>, it: u64) -> TrainState {
    TrainState {
        iteration: it,
        opt_t: it as u32,
        buffers: vec![("w".into(), BufferTag::Param, data)],
        logical_bytes: 64,
    }
}

fn cfg(shard_bytes: usize, workers: usize) -> ShardConfig {
    ShardConfig {
        shard_bytes,
        workers,
        delta: true,
        ..ShardConfig::default()
    }
}

fn write(store: &SharedStore, s: &TrainState, c: &ShardConfig) {
    checkpoint::write_checkpoint_with(store, JobId(0), CkptKind::Jit, RankId(0), 0, 0, 0, s, c)
        .unwrap();
}

fn serial_read(
    store: &SharedStore,
    it: u64,
) -> SimResult<(TrainState, checkpoint::CheckpointMeta)> {
    checkpoint::read_checkpoint(store, JobId(0), CkptKind::Jit, it, 0, 0, 0)
}

fn parallel_read<S: StorageBackend + ?Sized>(
    store: &S,
    it: u64,
    fetchers: usize,
) -> SimResult<(
    TrainState,
    checkpoint::CheckpointMeta,
    jitckpt::RestoreStats,
)> {
    read_checkpoint_parallel(
        store,
        JobId(0),
        CkptKind::Jit,
        it,
        0,
        0,
        0,
        &RestoreConfig { fetchers },
    )
}

fn bits(s: &TrainState) -> Vec<(String, Vec<u32>)> {
    s.buffers
        .iter()
        .map(|(k, _, d)| (k.clone(), d.iter().map(|f| f.to_bits()).collect()))
        .collect()
}

/// A store whose reads complete in deliberately scrambled order: each
/// `get` sleeps a path-hash-dependent sliver, so the fetch pool's
/// deposits arrive out of index order and the fan-in's in-order wait
/// actually has to reorder. Reports a wide read-parallelism hint so the
/// pool runs many fetchers.
struct ScrambledStore {
    inner: SharedStore,
}

impl StorageBackend for ScrambledStore {
    fn put(&self, path: &str, data: Bytes) -> SimResult<()> {
        self.inner.put(path, data)
    }

    fn get(&self, path: &str) -> SimResult<Bytes> {
        let jitter = path.bytes().map(|b| b as u64).sum::<u64>() % 7;
        // Real sleep, test-only: models external store latency so shard
        // completions land out of index order.
        std::thread::sleep(Duration::from_micros(jitter * 50));
        self.inner.get(path)
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn delete(&self, path: &str) {
        self.inner.delete(path)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.list(prefix)
    }

    fn delete_prefix(&self, prefix: &str) -> usize {
        self.inner.delete_prefix(prefix)
    }

    fn read_count(&self) -> u64 {
        self.inner.read_count()
    }

    fn object_count(&self) -> usize {
        self.inner.len()
    }

    fn read_parallelism(&self) -> usize {
        8
    }

    fn kind(&self) -> &'static str {
        "scrambled"
    }
}

/// Which fault the current case injects into one victim shard.
#[derive(Debug, Clone, Copy)]
enum Fault {
    None,
    Lost,
    Torn,
    Rotted,
}

fn fault_strategy() -> impl Strategy<Value = Fault> {
    prop_oneof![
        Just(Fault::None),
        Just(Fault::Lost),
        Just(Fault::Torn),
        Just(Fault::Rotted),
    ]
}

proptest! {
    /// The core equivalence: whatever the serial reader does — succeed
    /// bit-identically or fail with a specific blame — the parallel
    /// plane does the same, across shard geometry × delta depth × pool
    /// width × injected fault.
    #[test]
    fn parallel_is_bit_and_error_identical_to_serial(
        data in proptest::collection::vec(-100.0f32..100.0, 16..192),
        shard_bytes in 16usize..256,
        depth in 0usize..3,
        fetchers in 1usize..9,
        fault in fault_strategy(),
        victim in any::<proptest::sample::Index>(),
        touch in any::<proptest::sample::Index>(),
    ) {
        let store = SharedStore::new();
        let mut s = state_from(data, 7);
        let c = cfg(shard_bytes, 2);
        write(&store, &s, &c);
        // Optional delta chain on top: each step perturbs one element,
        // so most shards become base references.
        for d in 0..depth {
            let i = touch.index(s.buffers[0].2.len());
            s.buffers[0].2[i] += 1.0 + d as f32;
            s.iteration += 1;
            s.opt_t += 1;
            write(&store, &s, &c);
        }
        let tip = s.iteration;
        let meta = checkpoint::read_meta(&store, JobId(0), CkptKind::Jit, tip, 0, 0, 0).unwrap();

        // Inject the fault into the victim shard's *physical* object
        // (its base holder when the tip references one).
        if !matches!(fault, Fault::None) {
            let idx = victim.index(meta.shards.len());
            let sm = &meta.shards[idx];
            let holder = sm.base_iteration.unwrap_or(tip);
            let path = checkpoint::shard_path(
                JobId(0), CkptKind::Jit, holder, 0, 0, 0, sm.index,
            );
            match fault {
                Fault::None => unreachable!(),
                Fault::Lost => store.delete(&path),
                Fault::Torn => {
                    let obj = store.get(&path).unwrap();
                    prop_assume!(obj.len() > 1);
                    store.put(&path, obj.slice(..obj.len() / 2)).unwrap();
                }
                Fault::Rotted => store.corrupt(&path).unwrap(),
            }
        }

        let serial = serial_read(&store, tip);
        let parallel = parallel_read(&store, tip, fetchers);
        match (serial, parallel) {
            (Ok((ss, sm)), Ok((ps, pm, stats))) => {
                prop_assert_eq!(bits(&ss), bits(&ps));
                prop_assert_eq!(sm, pm.clone());
                prop_assert_eq!(stats.shards, pm.shards.len());
                prop_assert_eq!(stats.shard_reads, pm.shards.len() as u64);
            }
            (Err(se), Err(pe)) => {
                prop_assert_eq!(format!("{se}"), format!("{pe}"));
            }
            (s, p) => prop_assert!(
                false,
                "serial and parallel disagree on success: serial={s:?} parallel={p:?}"
            ),
        }
    }

    /// Multi-fault blame: rot a whole random subset of shards; the
    /// aggregated error must name *every* victim by index (and match
    /// the serial text exactly).
    #[test]
    fn every_bad_shard_is_named_by_index(
        data in proptest::collection::vec(any::<f32>(), 64..192),
        victims in proptest::collection::vec(any::<proptest::sample::Index>(), 1..5),
        fetchers in 1usize..9,
    ) {
        let store = SharedStore::new();
        let s = state_from(data, 7);
        write(&store, &s, &cfg(64, 2));
        let meta = checkpoint::read_meta(&store, JobId(0), CkptKind::Jit, 7, 0, 0, 0).unwrap();
        let idxs: BTreeSet<u32> = victims
            .iter()
            .map(|v| v.index(meta.shards.len()) as u32)
            .collect();
        for &idx in &idxs {
            store
                .corrupt(checkpoint::shard_path(JobId(0), CkptKind::Jit, 7, 0, 0, 0, idx))
                .unwrap();
        }
        let serial = serial_read(&store, 7).unwrap_err();
        let parallel = parallel_read(&store, 7, fetchers).unwrap_err();
        let msg = format!("{parallel}");
        prop_assert_eq!(format!("{serial}"), msg.clone());
        for idx in idxs.iter() {
            prop_assert!(
                msg.contains(&format!("shard {idx}: checksum mismatch")),
                "blame must name shard {idx}: {msg}"
            );
        }
        prop_assert!(
            msg.contains(&format!("{} of {} shards invalid", idxs.len(), meta.shards.len())),
            "{msg}"
        );
    }

    /// Out-of-order arrival: a store whose per-object latency scrambles
    /// completion order still reassembles bit-identically, because the
    /// fan-in consumes slots strictly by index.
    #[test]
    fn scrambled_arrival_order_is_reassembled_bit_identically(
        data in proptest::collection::vec(any::<f32>(), 32..160),
        shard_bytes in 16usize..128,
        fetchers in 2usize..9,
    ) {
        let scrambled = ScrambledStore { inner: SharedStore::new() };
        let s = state_from(data, 7);
        checkpoint::write_checkpoint_with(
            &scrambled, JobId(0), CkptKind::Jit, RankId(0), 0, 0, 0, &s, &cfg(shard_bytes, 2),
        ).unwrap();
        let (back, meta, stats) = parallel_read(&scrambled, 7, fetchers).unwrap();
        prop_assert_eq!(bits(&back), bits(&s));
        prop_assert_eq!(stats.shard_reads, meta.shards.len() as u64);
    }
}

//! Coordinator lifecycle: placement balance and epoch rebalancing,
//! object-store fault semantics, multi-job admission, retention GC with
//! delta-base pinning, departure purge, and per-job gate isolation.

use bytes::Bytes;
use cluster::{SharedStore, StorageBackend};
use coordinator::{
    Coordinator, CoordinatorConfig, JobSpec, ObjectStoreProfile, PlacedStore, SimObjectStore,
};
use dltrain::TrainState;
use jitckpt::checkpoint::{self, CkptKind, ShardConfig};
use simcore::{JobId, RankId, SimResult};
use simgpu::BufferTag;
use std::sync::Arc;

fn state(it: u64, elems: usize, v: f32) -> TrainState {
    TrainState {
        iteration: it,
        opt_t: it as u32,
        buffers: vec![("w".into(), BufferTag::Param, vec![v; elems])],
        logical_bytes: (elems * 4) as u64,
    }
}

fn small_shards() -> ShardConfig {
    ShardConfig {
        shard_bytes: 256,
        workers: 2,
        delta: true,
        ..ShardConfig::default()
    }
}

fn mem_nodes(n: usize) -> Vec<Arc<dyn StorageBackend>> {
    (0..n)
        .map(|_| Arc::new(SharedStore::new()) as Arc<dyn StorageBackend>)
        .collect()
}

/// Consistent hashing spreads many objects across every node, and no
/// node hoards the keyspace.
#[test]
fn placement_spreads_objects_across_nodes() -> SimResult<()> {
    let placed = PlacedStore::new(mem_nodes(4));
    for i in 0..400 {
        placed.put(&format!("obj/{i:04}"), Bytes::from(vec![i as u8; 8]))?;
    }
    let counts = placed.node_object_counts();
    assert_eq!(counts.len(), 4);
    assert_eq!(counts.iter().map(|(_, c)| c).sum::<usize>(), 400);
    for (slot, c) in counts {
        assert!(
            (40..=220).contains(&c),
            "node {slot} holds {c} of 400 — spread is broken"
        );
    }
    assert_eq!(placed.list("obj/").len(), 400);
    Ok(())
}

/// Adding a node starts a new epoch; objects written before the change
/// stay readable through ring history, repair migrates the stragglers
/// home, and reads work identically after repair.
#[test]
fn rebalance_keeps_old_objects_readable_and_repair_migrates() -> SimResult<()> {
    let placed = PlacedStore::new(mem_nodes(3));
    let epoch0 = placed.epoch();
    let payload = |i: usize| Bytes::from(format!("payload-{i}"));
    for i in 0..200 {
        placed.put(&format!("obj/{i:04}"), payload(i))?;
    }

    placed.add_node(Arc::new(SharedStore::new()));
    assert_eq!(placed.epoch(), epoch0 + 1);
    assert_eq!(placed.live_nodes(), 4);

    // Every pre-rebalance object still readable via ring history.
    for i in 0..200 {
        assert_eq!(placed.get(&format!("obj/{i:04}"))?, payload(i), "obj {i}");
    }

    // Repair moves only the re-homed fraction (~1/4), not everything.
    let moved = placed.repair("obj/");
    assert!(moved > 0, "a 3→4 rebalance must re-home something");
    assert!(moved < 150, "moved {moved} of 200 — far more than ~1/N");

    // After repair every object reads from its current-ring home.
    for i in 0..200 {
        assert_eq!(placed.get(&format!("obj/{i:04}"))?, payload(i));
    }
    assert_eq!(placed.object_count(), 200, "repair must move, not copy");
    Ok(())
}

/// Object-store faults: a silently lost put leaves no object, a torn
/// put stores truncated bytes the CRC protocol rejects, and the loss
/// counter reports what happened.
#[test]
fn object_store_faults_are_injected_and_detected() -> SimResult<()> {
    let os = SimObjectStore::new(ObjectStoreProfile::instant());

    os.lose_next_put_matching("a/");
    os.put("a/gone", Bytes::from_static(b"vanishes"))?; // acknowledged
    assert!(!os.exists("a/gone"), "lost put must leave no object");
    assert_eq!(os.lost_puts(), 1);

    os.put("a/kept", Bytes::from_static(b"stays"))?;
    assert_eq!(os.get("a/kept")?, Bytes::from_static(b"stays"));

    os.tear_next_put_matching("b/", 0.5);
    os.put("b/torn", Bytes::from_static(b"12345678"))?;
    assert_eq!(os.get("b/torn")?.len(), 4, "torn write stores a prefix");

    // A whole checkpoint written over the faulty backend: tear one
    // shard, the validating reader must reject that iteration.
    let cfg = small_shards();
    let s = state(3, 200, 1.25);
    os.tear_next_put_matching("ckpt/", 0.25);
    checkpoint::write_checkpoint_with(&os, JobId(7), CkptKind::Jit, RankId(0), 0, 0, 0, &s, &cfg)?;
    assert!(
        checkpoint::read_checkpoint(&os, JobId(7), CkptKind::Jit, 3, 0, 0, 0).is_err(),
        "CRC validation must reject the torn shard"
    );
    Ok(())
}

/// Full multi-job lifecycle over a placed fleet: admit, write-behind
/// checkpoints from several jobs, retention GC respects delta pinning,
/// departure purges only the departing job.
#[test]
fn multi_job_lifecycle_with_retention_and_departure() -> SimResult<()> {
    let placed: Arc<dyn StorageBackend> = Arc::new(PlacedStore::new(mem_nodes(4)));
    let coord = Coordinator::new(placed, CoordinatorConfig::default());

    let spec = JobSpec {
        ranks: 2,
        shards: small_shards(),
        keep_checkpoints: 2,
        inflight_budget_bytes: 1 << 20,
    };
    let a = coord.admit(spec.clone());
    let b = coord.admit(spec);
    assert_eq!(coord.active_jobs(), 2);
    assert_ne!(a.job(), b.job());

    // Job A: 6 generations, mutating state each time (delta chains form
    // and are capped); job B: 3 generations.
    for it in 1..=6 {
        let t = a.submit_checkpoint(
            CkptKind::Jit,
            RankId(0),
            0,
            0,
            0,
            &state(it, 200, it as f32),
        );
        t.wait()?;
        a.gc(CkptKind::Jit);
    }
    for it in 1..=3 {
        b.submit_checkpoint(CkptKind::Jit, RankId(0), 0, 0, 0, &state(it, 150, 2.0))
            .wait()?;
    }
    b.drain()?;

    // Retention on A: newest 2 iterations plus any delta-pinned bases
    // survive; iteration 1 must be gone by now.
    let a_prefix = checkpoint::job_prefix(a.job(), CkptKind::Jit);
    let left = a.backend().list(&a_prefix);
    assert!(
        !left.iter().any(|p| p.contains("it0000000001")),
        "iteration 1 outlived retention: {left:?}"
    );
    // The newest retained checkpoint still reads back bit-identically
    // (GC must never break a delta chain it retained).
    let (got, _) = checkpoint::read_checkpoint(a.backend(), a.job(), CkptKind::Jit, 6, 0, 0, 0)?;
    assert_eq!(got, state(6, 200, 6.0));

    // B departs with purge; A's objects are untouched.
    let b_job = b.job();
    let purged = coord.depart(b_job, true)?;
    assert!(purged > 0);
    assert_eq!(coord.active_jobs(), 1);
    assert!(coord
        .backend()
        .list(&checkpoint::job_prefix(b_job, CkptKind::Jit))
        .is_empty());
    let (still, _) = checkpoint::read_checkpoint(a.backend(), a.job(), CkptKind::Jit, 6, 0, 0, 0)?;
    assert_eq!(still, state(6, 200, 6.0));
    Ok(())
}

/// GC keeps an iteration outside the retention window while a retained
/// sidecar still references it as a delta base, then collects it once
/// the chain cap forces a full write.
#[test]
fn gc_pins_delta_bases_until_chain_breaks() -> SimResult<()> {
    let backend: Arc<dyn StorageBackend> = Arc::new(SharedStore::new());
    let coord = Coordinator::new(backend, CoordinatorConfig::default());
    let sess = coord.admit(JobSpec {
        shards: ShardConfig {
            max_delta_chain: 8,
            ..small_shards()
        },
        keep_checkpoints: 1,
        ..JobSpec::default()
    });

    // Identical buffers every iteration ⇒ all shards delta back to the
    // bytes written at iteration 1.
    for it in 1..=4 {
        sess.submit_checkpoint(CkptKind::Jit, RankId(0), 0, 0, 0, &state(it, 200, 1.0))
            .wait()?;
    }
    let deleted = sess.gc(CkptKind::Jit);
    let prefix = checkpoint::job_prefix(sess.job(), CkptKind::Jit);
    let left = sess.backend().list(&prefix);
    assert!(
        left.iter().any(|p| p.contains("it0000000001")),
        "iteration 1 holds the delta bytes — GC must pin it (deleted {deleted}): {left:?}"
    );
    // The retained head must read back whole after GC.
    let (got, meta) =
        checkpoint::read_checkpoint(sess.backend(), sess.job(), CkptKind::Jit, 4, 0, 0, 0)?;
    assert_eq!(got, state(4, 200, 1.0));
    assert!(meta.delta_depth > 0, "head should still be a delta");
    Ok(())
}

/// A job on a throttled dedicated backend blocks on its own gate while
/// a healthy job sharing the same uploader pool completes normally.
#[test]
fn slow_backend_job_does_not_block_healthy_job() -> SimResult<()> {
    let healthy_store: Arc<dyn StorageBackend> =
        Arc::new(SimObjectStore::new(ObjectStoreProfile::instant()));
    let coord = Coordinator::new(healthy_store, CoordinatorConfig::default());

    let slow = SimObjectStore::new(ObjectStoreProfile {
        put_latency: std::time::Duration::from_millis(5),
        parallel_streams: 1,
        ..ObjectStoreProfile::instant()
    });
    slow.set_throttle(4.0);

    let spec = JobSpec {
        shards: small_shards(),
        keep_checkpoints: 8,
        inflight_budget_bytes: 600, // ~2 shards in flight
        ..JobSpec::default()
    };
    let slow_job = coord.admit_with_backend(spec.clone(), Arc::new(slow));
    let fast_job = coord.admit(spec);

    // Kick off the slow job's checkpoint, then run many fast-job
    // generations to completion while the slow one is still in flight.
    let slow_ticket =
        slow_job.submit_checkpoint(CkptKind::Jit, RankId(0), 0, 0, 0, &state(1, 800, 1.0));
    for it in 1..=5 {
        fast_job
            .submit_checkpoint(CkptKind::Jit, RankId(0), 0, 0, 0, &state(it, 400, 2.0))
            .wait()?;
    }
    // The healthy job is fully durable; only now wait out the slow one.
    slow_ticket.wait()?;
    let (got, _) = checkpoint::read_checkpoint(
        fast_job.backend(),
        fast_job.job(),
        CkptKind::Jit,
        5,
        0,
        0,
        0,
    )?;
    assert_eq!(got, state(5, 400, 2.0));
    let (slow_got, _) = checkpoint::read_checkpoint(
        slow_job.backend(),
        slow_job.job(),
        CkptKind::Jit,
        1,
        0,
        0,
        0,
    )?;
    assert_eq!(slow_got, state(1, 800, 1.0));
    Ok(())
}

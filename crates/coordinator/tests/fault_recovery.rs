//! Recovery bit-identity over the simulated object store.
//!
//! Re-runs the `restore_with_fallback` chain — in-network ledger
//! replay, streamed replica, store round-trip — with the checkpoint
//! store swapped for [`SimObjectStore`] running with latency, slow
//! reads, and injected faults (a torn shard decoy and a silently lost
//! sidecar decoy newer than the good checkpoint). Every leg must
//! return state bit-identical to the failed rank's truth: backend
//! behavior may change *when* recovery completes, never *what* it
//! recovers.

use cluster::{FailureInjector, StorageBackend};
use collectives::{CommWorld, GradLedger, LedgerConfig};
use coordinator::{ObjectStoreProfile, SimObjectStore};
use dltrain::trainer::DEFAULT_BUCKET_BYTES;
use dltrain::{JobSetup, RankTrainer, TrainConfig, TrainState};
use jitckpt::checkpoint::{self, CkptKind, ShardConfig};
use jitckpt::stream::{
    self, recv_ledger_history, restore_with_fallback, send_ledger_slices, RecoverySource,
};
use proxy::DirectExecutor;
use simcore::cost::CostModel;
use simcore::time::ClockBoard;
use simcore::{GpuId, JobId, RankId, SimResult};
use simgpu::Gpu;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Stream-patience deadlines are wall-clock: serialize these tests so
/// host load cannot cause false timeouts.
static SEQ: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SEQ.lock().unwrap_or_else(|e| e.into_inner())
}

fn state_bits(s: &TrainState) -> Vec<(String, Vec<u32>)> {
    s.buffers
        .iter()
        .map(|(k, _, d)| (k.clone(), d.iter().map(|f| f.to_bits()).collect()))
        .collect()
}

fn train_with_ledgers(cfg: &TrainConfig, iters: u64) -> Vec<(TrainState, Arc<GradLedger>)> {
    let setup = JobSetup::build(cfg.layout, CostModel::v100(), cfg.ranks_per_node);
    let world = setup.world.clone();
    let per_rank = setup.per_rank.clone();
    let cfg = cfg.clone();
    let n = cfg.layout.world_size();
    let results = dltrain::run_ranks(n, move |i| {
        let gpu = Gpu::new(GpuId(i as u32), CostModel::v100());
        let exec = DirectExecutor::new(RankId(i as u32), i, gpu, world.clone());
        let mut tr = RankTrainer::new(exec, cfg.clone(), &per_rank[i], FailureInjector::none())?;
        tr.set_bucket_bytes(DEFAULT_BUCKET_BYTES);
        let dp = per_rank[i].dp.as_ref().expect("dp group").clone();
        let ledger = tr.attach_grad_ledger(&dp, LedgerConfig::unbounded())?;
        tr.train(iters)?;
        Ok((tr.state_snapshot()?, ledger))
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

fn recovery_world(n: usize) -> Arc<CommWorld> {
    CommWorld::new(Arc::new(ClockBoard::new(n)), CostModel::v100(), 8)
}

fn replay_replacement(
    cfg: &TrainConfig,
    failed: usize,
    history: &[Vec<Vec<f32>>],
) -> SimResult<TrainState> {
    let setup = JobSetup::build(cfg.layout, CostModel::v100(), cfg.ranks_per_node);
    let gpu = Gpu::new(GpuId(failed as u32), CostModel::v100());
    let exec = DirectExecutor::new(RankId(failed as u32), failed, gpu, setup.world.clone());
    let mut tr = RankTrainer::new(
        exec,
        cfg.clone(),
        &setup.per_rank[failed],
        FailureInjector::none(),
    )?;
    tr.set_bucket_bytes(DEFAULT_BUCKET_BYTES);
    tr.replay_reduced_history(history)?;
    tr.state_snapshot()
}

/// An object store with realistic (but test-fast) latency, slowed
/// reads, and bandwidth metering.
fn faulty_object_store() -> SimObjectStore {
    let os = SimObjectStore::new(ObjectStoreProfile {
        put_latency: Duration::from_micros(200),
        get_latency: Duration::from_micros(100),
        bytes_per_sec: 500_000_000,
        parallel_streams: 4,
        put_loss_per_mille: 0,
        seed: 42,
    });
    os.set_slow_reads(3.0);
    os
}

/// All three fallback legs recover bit-identical state when the store
/// behind the chain is the simulated object store with faults armed:
/// two decoy checkpoints newer than the good one (one with a torn
/// shard, one whose sidecar was silently lost) must be rejected or
/// invisible, never returned.
#[test]
fn all_three_legs_bit_identical_over_faulty_object_store() -> SimResult<()> {
    let _guard = serial();
    let cfg = TrainConfig::tiny_dp(4);
    let iters = 4u64;
    let ran = train_with_ledgers(&cfg, iters);
    let failed = 0usize;
    let truth = ran[failed].0.clone();
    let cost = CostModel::v100();
    let shard_cfg = ShardConfig {
        shard_bytes: 1024,
        ..ShardConfig::default()
    };

    let store = Arc::new(faulty_object_store());

    // The good checkpoint: a healthy replica's state at `iters`.
    checkpoint::write_checkpoint_with(
        &*store,
        JobId(0),
        CkptKind::Jit,
        RankId(2),
        0,
        0,
        2,
        &ran[2].0,
        &shard_cfg,
    )?;

    // Decoy 1 (newer): one shard torn mid-write — sidecar completes but
    // CRC validation must reject the iteration.
    let mut torn = ran[2].0.clone();
    torn.iteration = iters + 1;
    store.tear_next_put_matching(
        checkpoint::checkpoint_prefix(JobId(0), CkptKind::Jit, iters + 1, 0, 0, 2),
        0.5,
    );
    checkpoint::write_checkpoint_with(
        &*store,
        JobId(0),
        CkptKind::Jit,
        RankId(2),
        0,
        0,
        2,
        &torn,
        &shard_cfg,
    )?;

    // Decoy 2 (newest): the completion sidecar itself is silently lost
    // — acknowledged, never stored — so the checkpoint must be
    // invisible to assembly.
    let mut lost = ran[2].0.clone();
    lost.iteration = iters + 2;
    store.lose_next_put_matching(checkpoint::meta_path(
        JobId(0),
        CkptKind::Jit,
        iters + 2,
        0,
        0,
        2,
    ));
    checkpoint::write_checkpoint_with(
        &*store,
        JobId(0),
        CkptKind::Jit,
        RankId(2),
        0,
        0,
        2,
        &lost,
        &shard_cfg,
    )?;
    assert_eq!(store.lost_puts(), 1, "the sidecar loss must have fired");

    let survivors = [1usize, 2, 3];
    let srcs: Vec<RankId> = survivors.iter().map(|&s| RankId(s as u32)).collect();

    // Leg 1: in-network ledger replay; the object store is not read.
    {
        let rw = recovery_world(4);
        for &s in &survivors {
            send_ledger_slices(
                &rw,
                &cost,
                RankId(s as u32),
                s,
                RankId(failed as u32),
                true,
                &ran[s].1,
                0..iters,
            )?;
        }
        let reads_before = store.read_count();
        let (state, source) = restore_with_fallback(
            || {
                let history = recv_ledger_history(
                    &rw,
                    &cost,
                    &srcs,
                    RankId(failed as u32),
                    failed,
                    Duration::from_secs(5),
                    0..iters,
                )?;
                replay_replacement(&cfg, failed, &history)
            },
            || panic!("in-network path must not fall through to the stream"),
            || panic!("in-network path must not fall through to the store"),
        )?;
        assert_eq!(source, RecoverySource::InNetwork);
        assert_eq!(state_bits(&state), state_bits(&truth));
        assert_eq!(store.read_count(), reads_before);
    }

    // Leg 2: ledger coverage lost (only ranks 2,3 survive) ⇒ streamed
    // replica; still no object-store reads.
    {
        let rw = recovery_world(4);
        let pair = [2usize, 3];
        let pair_srcs: Vec<RankId> = pair.iter().map(|&s| RankId(s as u32)).collect();
        for &s in &pair {
            send_ledger_slices(
                &rw,
                &cost,
                RankId(s as u32),
                s,
                RankId(failed as u32),
                true,
                &ran[s].1,
                0..iters,
            )?;
        }
        stream::send_state(
            &rw,
            &cost,
            RankId(2),
            2,
            RankId(failed as u32),
            true,
            &ran[2].0,
            4096,
        )?;
        let reads_before = store.read_count();
        let (state, source) = restore_with_fallback(
            || {
                let history = recv_ledger_history(
                    &rw,
                    &cost,
                    &pair_srcs,
                    RankId(failed as u32),
                    failed,
                    Duration::from_secs(5),
                    0..iters,
                )?;
                replay_replacement(&cfg, failed, &history)
            },
            || {
                stream::recv_state(
                    &rw,
                    &cost,
                    RankId(2),
                    RankId(failed as u32),
                    failed,
                    Duration::from_secs(5),
                )
            },
            || panic!("streamed replica succeeded; the store must stay untouched"),
        )?;
        assert_eq!(source, RecoverySource::StreamedReplica);
        assert_eq!(state_bits(&state), state_bits(&truth));
        assert_eq!(store.read_count(), reads_before);
    }

    // Leg 3: stream truncated too ⇒ object-store round-trip. Assembly
    // must skip both decoys (torn shard, lost sidecar) and land on the
    // good iteration, bit-identically, despite latency and slow reads.
    {
        let rw = recovery_world(4);
        let pair = [2usize, 3];
        let pair_srcs: Vec<RankId> = pair.iter().map(|&s| RankId(s as u32)).collect();
        for &s in &pair {
            send_ledger_slices(
                &rw,
                &cost,
                RankId(s as u32),
                s,
                RankId(failed as u32),
                true,
                &ran[s].1,
                0..iters,
            )?;
        }
        stream::send_state_truncated(
            &rw,
            &cost,
            RankId(2),
            2,
            RankId(failed as u32),
            true,
            &ran[2].0,
            4096,
            1,
        )?;
        let (state, source) = restore_with_fallback(
            || {
                let history = recv_ledger_history(
                    &rw,
                    &cost,
                    &pair_srcs,
                    RankId(failed as u32),
                    failed,
                    Duration::from_secs(5),
                    0..iters,
                )?;
                replay_replacement(&cfg, failed, &history)
            },
            || {
                stream::recv_state(
                    &rw,
                    &cost,
                    RankId(2),
                    RankId(failed as u32),
                    failed,
                    Duration::from_millis(100),
                )
            },
            || {
                checkpoint::load_for_rank(&*store, JobId(0), &cfg.layout, RankId(failed as u32))
                    .map(|(state, _)| state)
            },
        )?;
        assert_eq!(source, RecoverySource::Store);
        assert_eq!(
            state.iteration, truth.iteration,
            "assembly must reject both newer decoys"
        );
        assert_eq!(state_bits(&state), state_bits(&truth));
        assert!(store.read_count() > 0, "the store leg must read the store");
    }
    Ok(())
}

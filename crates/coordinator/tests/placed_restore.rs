//! Parallel restore over a placement fleet that churns mid-restore.
//!
//! ROADMAP item-3 follow-on: the `restore_with_fallback` chain —
//! in-network ledger replay, streamed replica, store round-trip — with
//! the store leg backed by a [`PlacedStore`] over several
//! [`SimObjectStore`] nodes, while `add_node`/`remove_node` fire *during*
//! the restore. The parallel fetch plane must stripe shard reads across
//! the fleet, survive the epoch bumps via ring-history fallback, and
//! return state bit-identical to the failed rank's truth; `repair()`
//! must then converge (no more stragglers) and drive fallback reads back
//! to zero.

use cluster::{FailureInjector, StorageBackend};
use collectives::{CommWorld, GradLedger, LedgerConfig};
use coordinator::{ObjectStoreProfile, PlacedStore, SimObjectStore};
use dltrain::trainer::DEFAULT_BUCKET_BYTES;
use dltrain::{JobSetup, RankTrainer, TrainConfig, TrainState};
use jitckpt::checkpoint::{self, CkptKind, ShardConfig};
use jitckpt::restore::{load_for_rank_parallel, RestoreConfig};
use jitckpt::stream::{
    self, recv_ledger_history, restore_with_fallback, send_ledger_slices, RecoverySource,
};
use proxy::DirectExecutor;
use simcore::cost::CostModel;
use simcore::time::ClockBoard;
use simcore::{GpuId, JobId, RankId, SimResult};
use simgpu::Gpu;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Stream-patience deadlines are wall-clock: serialize these tests so
/// host load cannot cause false timeouts.
static SEQ: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SEQ.lock().unwrap_or_else(|e| e.into_inner())
}

fn state_bits(s: &TrainState) -> Vec<(String, Vec<u32>)> {
    s.buffers
        .iter()
        .map(|(k, _, d)| (k.clone(), d.iter().map(|f| f.to_bits()).collect()))
        .collect()
}

fn train_with_ledgers(cfg: &TrainConfig, iters: u64) -> Vec<(TrainState, Arc<GradLedger>)> {
    let setup = JobSetup::build(cfg.layout, CostModel::v100(), cfg.ranks_per_node);
    let world = setup.world.clone();
    let per_rank = setup.per_rank.clone();
    let cfg = cfg.clone();
    let n = cfg.layout.world_size();
    let results = dltrain::run_ranks(n, move |i| {
        let gpu = Gpu::new(GpuId(i as u32), CostModel::v100());
        let exec = DirectExecutor::new(RankId(i as u32), i, gpu, world.clone());
        let mut tr = RankTrainer::new(exec, cfg.clone(), &per_rank[i], FailureInjector::none())?;
        tr.set_bucket_bytes(DEFAULT_BUCKET_BYTES);
        let dp = per_rank[i].dp.as_ref().expect("dp group").clone();
        let ledger = tr.attach_grad_ledger(&dp, LedgerConfig::unbounded())?;
        tr.train(iters)?;
        Ok((tr.state_snapshot()?, ledger))
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

fn recovery_world(n: usize) -> Arc<CommWorld> {
    CommWorld::new(Arc::new(ClockBoard::new(n)), CostModel::v100(), 8)
}

fn replay_replacement(
    cfg: &TrainConfig,
    failed: usize,
    history: &[Vec<Vec<f32>>],
) -> SimResult<TrainState> {
    let setup = JobSetup::build(cfg.layout, CostModel::v100(), cfg.ranks_per_node);
    let gpu = Gpu::new(GpuId(failed as u32), CostModel::v100());
    let exec = DirectExecutor::new(RankId(failed as u32), failed, gpu, setup.world.clone());
    let mut tr = RankTrainer::new(
        exec,
        cfg.clone(),
        &setup.per_rank[failed],
        FailureInjector::none(),
    )?;
    tr.set_bucket_bytes(DEFAULT_BUCKET_BYTES);
    tr.replay_reduced_history(history)?;
    tr.state_snapshot()
}

/// One fleet node: enough latency to leave a real window for the
/// mid-restore membership changes, fast enough for a unit test.
fn fleet_node() -> Arc<dyn StorageBackend> {
    Arc::new(SimObjectStore::new(ObjectStoreProfile {
        put_latency: Duration::from_micros(100),
        get_latency: Duration::from_micros(300),
        bytes_per_sec: 500_000_000,
        parallel_streams: 4,
        put_loss_per_mille: 0,
        seed: 7,
    }))
}

/// All three fallback legs over a placed fleet, with membership churn
/// racing the store leg's parallel restore, then repair convergence.
#[test]
fn three_legs_with_mid_restore_rebalance() -> SimResult<()> {
    let _guard = serial();
    let cfg = TrainConfig::tiny_dp(4);
    let iters = 4u64;
    let ran = train_with_ledgers(&cfg, iters);
    let failed = 0usize;
    let truth = ran[failed].0.clone();
    let cost = CostModel::v100();
    // Small shards ⇒ many objects ⇒ the consistent hash stripes the
    // checkpoint across all fleet nodes and a membership change rehomes
    // a meaningful fraction of them.
    let shard_cfg = ShardConfig {
        shard_bytes: 256,
        ..ShardConfig::default()
    };

    let placed = Arc::new(PlacedStore::new(vec![
        fleet_node(),
        fleet_node(),
        fleet_node(),
    ]));

    checkpoint::write_checkpoint_with(
        &*placed,
        JobId(0),
        CkptKind::Jit,
        RankId(2),
        0,
        0,
        2,
        &ran[2].0,
        &shard_cfg,
    )?;
    let meta = checkpoint::read_meta(&*placed, JobId(0), CkptKind::Jit, iters, 0, 0, 2)?;
    assert!(
        meta.shards.len() >= 16,
        "want a wide stripe, got {} shards",
        meta.shards.len()
    );

    let survivors = [1usize, 2, 3];
    let srcs: Vec<RankId> = survivors.iter().map(|&s| RankId(s as u32)).collect();

    // Leg 1: in-network ledger replay; the fleet is not read.
    {
        let rw = recovery_world(4);
        for &s in &survivors {
            send_ledger_slices(
                &rw,
                &cost,
                RankId(s as u32),
                s,
                RankId(failed as u32),
                true,
                &ran[s].1,
                0..iters,
            )?;
        }
        let reads_before = placed.read_count();
        let (state, source) = restore_with_fallback(
            || {
                let history = recv_ledger_history(
                    &rw,
                    &cost,
                    &srcs,
                    RankId(failed as u32),
                    failed,
                    Duration::from_secs(5),
                    0..iters,
                )?;
                replay_replacement(&cfg, failed, &history)
            },
            || panic!("in-network path must not fall through to the stream"),
            || panic!("in-network path must not fall through to the store"),
        )?;
        assert_eq!(source, RecoverySource::InNetwork);
        assert_eq!(state_bits(&state), state_bits(&truth));
        assert_eq!(placed.read_count(), reads_before);
    }

    // Leg 2: ledger coverage lost ⇒ streamed replica; still no fleet
    // reads.
    {
        let rw = recovery_world(4);
        let pair = [2usize, 3];
        let pair_srcs: Vec<RankId> = pair.iter().map(|&s| RankId(s as u32)).collect();
        for &s in &pair {
            send_ledger_slices(
                &rw,
                &cost,
                RankId(s as u32),
                s,
                RankId(failed as u32),
                true,
                &ran[s].1,
                0..iters,
            )?;
        }
        stream::send_state(
            &rw,
            &cost,
            RankId(2),
            2,
            RankId(failed as u32),
            true,
            &ran[2].0,
            4096,
        )?;
        let reads_before = placed.read_count();
        let (state, source) = restore_with_fallback(
            || {
                let history = recv_ledger_history(
                    &rw,
                    &cost,
                    &pair_srcs,
                    RankId(failed as u32),
                    failed,
                    Duration::from_secs(5),
                    0..iters,
                )?;
                replay_replacement(&cfg, failed, &history)
            },
            || {
                stream::recv_state(
                    &rw,
                    &cost,
                    RankId(2),
                    RankId(failed as u32),
                    failed,
                    Duration::from_secs(5),
                )
            },
            || panic!("streamed replica succeeded; the fleet must stay untouched"),
        )?;
        assert_eq!(source, RecoverySource::StreamedReplica);
        assert_eq!(state_bits(&state), state_bits(&truth));
        assert_eq!(placed.read_count(), reads_before);
    }

    // Leg 3: stream truncated too ⇒ fleet round-trip through the
    // parallel plane, with `add_node`/`remove_node` firing *while* the
    // fetch pool is striping shard reads. The churned node is empty, so
    // removing it again loses nothing — but each change bumps the epoch
    // and rehomes keyspace, exercising ring-history fallback and the
    // epoch-retry loop concurrently with the restore.
    {
        let rw = recovery_world(4);
        let pair = [2usize, 3];
        let pair_srcs: Vec<RankId> = pair.iter().map(|&s| RankId(s as u32)).collect();
        for &s in &pair {
            send_ledger_slices(
                &rw,
                &cost,
                RankId(s as u32),
                s,
                RankId(failed as u32),
                true,
                &ran[s].1,
                0..iters,
            )?;
        }
        stream::send_state_truncated(
            &rw,
            &cost,
            RankId(2),
            2,
            RankId(failed as u32),
            true,
            &ran[2].0,
            4096,
            1,
        )?;
        let churner = {
            let placed = placed.clone();
            std::thread::spawn(move || {
                for _ in 0..4 {
                    let slot = placed.add_node(fleet_node());
                    std::thread::sleep(Duration::from_micros(400));
                    placed.remove_node(slot);
                    std::thread::sleep(Duration::from_micros(400));
                }
            })
        };
        let (state, source) = restore_with_fallback(
            || {
                let history = recv_ledger_history(
                    &rw,
                    &cost,
                    &pair_srcs,
                    RankId(failed as u32),
                    failed,
                    Duration::from_secs(5),
                    0..iters,
                )?;
                replay_replacement(&cfg, failed, &history)
            },
            || {
                stream::recv_state(
                    &rw,
                    &cost,
                    RankId(2),
                    RankId(failed as u32),
                    failed,
                    Duration::from_millis(100),
                )
            },
            || {
                load_for_rank_parallel(
                    &*placed,
                    JobId(0),
                    &cfg.layout,
                    RankId(failed as u32),
                    &RestoreConfig::default(),
                )
                .map(|(state, _, _)| state)
            },
        )?;
        churner.join().expect("churn thread panicked");
        assert_eq!(source, RecoverySource::Store);
        assert_eq!(state_bits(&state), state_bits(&truth));
        assert!(placed.read_count() > 0, "the store leg must read the fleet");
    }

    // Deterministic rebalance: a permanent membership change rehomes a
    // chunk of the keyspace, so a restore *must* lean on ring-history
    // fallback; `repair()` then migrates every straggler home and a
    // fresh restore runs fallback-free.
    {
        placed.add_node(fleet_node());
        let (state, _, stats) = load_for_rank_parallel(
            &*placed,
            JobId(0),
            &cfg.layout,
            RankId(failed as u32),
            &RestoreConfig::default(),
        )?;
        assert_eq!(state_bits(&state), state_bits(&truth));
        assert!(
            stats.fallback_hits > 0,
            "post-rebalance restore should hit older rings (stats: {stats:?})"
        );

        let mut rounds = 0;
        loop {
            let moved = placed.repair("ckpt/");
            rounds += 1;
            if moved == 0 {
                break;
            }
            assert!(rounds < 8, "repair must converge, still moving objects");
        }

        let (state, _, stats) = load_for_rank_parallel(
            &*placed,
            JobId(0),
            &cfg.layout,
            RankId(failed as u32),
            &RestoreConfig::default(),
        )?;
        assert_eq!(state_bits(&state), state_bits(&truth));
        assert_eq!(
            stats.fallback_hits, 0,
            "after repair every shard reads from its home node (stats: {stats:?})"
        );
    }
    Ok(())
}

//! A simulated remote object store.
//!
//! [`SharedStore`](cluster::SharedStore) answers in nanoseconds; real
//! checkpoint backends (blob stores, NFS heads) answer in milliseconds,
//! meter bandwidth per connection, cap concurrent streams, and
//! occasionally lie — an acknowledged put that never becomes readable,
//! or a read that crawls. [`SimObjectStore`] wraps the in-memory store
//! with exactly those behaviors so the write-behind pipeline, the
//! coordinator's placement layer, and the recovery fallback chain can
//! be exercised (and benchmarked) against a backend that actually costs
//! something:
//!
//! * fixed per-op **latency** plus per-byte **throughput** delay,
//!   multiplied by a runtime-adjustable throttle (degraded-backend
//!   churn in benches);
//! * a bounded pool of **transfer slots** — more concurrent transfers
//!   than slots queue on a condvar, like connection limits do;
//! * **fault injection**: deterministic (seeded) probabilistic put
//!   loss, one-shot targeted loss by path prefix, slow-read multipliers,
//!   and pass-through to the inner store's torn-write hooks.
//!
//! All sleeps happen *outside* any lock: a stalled transfer occupies a
//! slot, never a mutex.

use bytes::Bytes;
use cluster::{SharedStore, StorageBackend};
use simcore::rng::DetRng;
use simcore::sync::{Condvar, Mutex};
use simcore::SimResult;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Behavior profile for a [`SimObjectStore`].
#[derive(Debug, Clone)]
pub struct ObjectStoreProfile {
    /// Fixed request latency per put.
    pub put_latency: Duration,
    /// Fixed request latency per get.
    pub get_latency: Duration,
    /// Per-stream transfer bandwidth, bytes/second. `0` = unmetered.
    pub bytes_per_sec: u64,
    /// Concurrent transfer slots (connection limit).
    pub parallel_streams: usize,
    /// Out of 1000 puts, how many are acknowledged but silently lost.
    pub put_loss_per_mille: u32,
    /// Deterministic seed for the loss coin.
    pub seed: u64,
}

impl Default for ObjectStoreProfile {
    fn default() -> Self {
        ObjectStoreProfile {
            put_latency: Duration::from_micros(500),
            get_latency: Duration::from_micros(300),
            bytes_per_sec: 2_000_000_000, // ~2 GB/s per stream
            parallel_streams: 8,
            put_loss_per_mille: 0,
            seed: 0x0b1ec7,
        }
    }
}

impl ObjectStoreProfile {
    /// A profile with zero injected delay — behavioral tests that only
    /// care about fault semantics, not timing.
    pub fn instant() -> Self {
        ObjectStoreProfile {
            put_latency: Duration::ZERO,
            get_latency: Duration::ZERO,
            bytes_per_sec: 0,
            ..Default::default()
        }
    }
}

/// Transfer-slot semaphore (connection limit).
struct Slots {
    free: Mutex<usize>,
    freed: Condvar,
}

impl Slots {
    fn acquire(&self) {
        let mut free = self.free.lock();
        while *free == 0 {
            self.freed.wait(&mut free);
        }
        *free -= 1;
    }

    fn release(&self) {
        let mut free = self.free.lock();
        *free += 1;
        self.freed.notify_one();
    }
}

/// In-memory object store with injected latency, metered bandwidth,
/// bounded transfer streams, and lossy-put / slow-read faults.
pub struct SimObjectStore {
    inner: SharedStore,
    profile: ObjectStoreProfile,
    slots: Slots,
    /// Time multiplier applied to every delay; `set_throttle(50.0)`
    /// turns this backend into the degraded node of a churn scenario.
    /// Stored as micros-per-unit ×1e6 in an atomic for lock-free reads.
    throttle_milli: AtomicU64,
    /// Extra multiplier applied to reads only.
    slow_read_milli: AtomicU64,
    /// Loss coin.
    rng: Mutex<DetRng>,
    /// One-shot targeted loss: next put whose path starts with this
    /// prefix is acknowledged and dropped.
    lose_next: Mutex<Option<String>>,
    /// Puts acknowledged but never stored.
    lost_puts: AtomicU64,
}

impl SimObjectStore {
    /// Creates an empty store with the given behavior profile.
    pub fn new(profile: ObjectStoreProfile) -> SimObjectStore {
        SimObjectStore {
            slots: Slots {
                free: Mutex::new(profile.parallel_streams.max(1)),
                freed: Condvar::new(),
            },
            rng: Mutex::new(DetRng::new(profile.seed)),
            inner: SharedStore::new(),
            throttle_milli: AtomicU64::new(1000),
            slow_read_milli: AtomicU64::new(1000),
            lose_next: Mutex::new(None),
            lost_puts: AtomicU64::new(0),
            profile,
        }
    }

    /// Multiplies every injected delay by `factor` (1.0 = nominal).
    /// Takes effect for transfers that start after the call.
    pub fn set_throttle(&self, factor: f64) {
        let m = (factor.max(0.0) * 1000.0) as u64;
        self.throttle_milli.store(m.max(1), Ordering::Relaxed);
    }

    /// Multiplies read delays by `factor` on top of the throttle.
    pub fn set_slow_reads(&self, factor: f64) {
        let m = (factor.max(0.0) * 1000.0) as u64;
        self.slow_read_milli.store(m.max(1), Ordering::Relaxed);
    }

    /// Arms a one-shot silent loss: the next put under `prefix` is
    /// acknowledged but the object never becomes readable.
    pub fn lose_next_put_matching(&self, prefix: impl Into<String>) {
        *self.lose_next.lock() = Some(prefix.into());
    }

    /// Arms a one-shot torn write (stored object truncated to
    /// `fraction`) on the next put under `prefix` — forwarded to the
    /// inner store, which models it.
    pub fn tear_next_put_matching(&self, prefix: impl Into<String>, fraction: f64) {
        self.inner.fail_next_write_matching(prefix, fraction);
    }

    /// Flips stored object bytes (bit rot) — forwarded to the inner store.
    pub fn corrupt(&self, path: &str) -> SimResult<()> {
        self.inner.corrupt(path)
    }

    /// Puts acknowledged but silently dropped so far.
    pub fn lost_puts(&self) -> u64 {
        self.lost_puts.load(Ordering::Relaxed)
    }

    /// Models request latency + transfer time for `bytes`, under the
    /// current throttle. Called with a transfer slot held and no lock.
    fn delay(&self, base: Duration, bytes: usize, read: bool) {
        let mut nanos = base.as_nanos() as u64;
        if self.profile.bytes_per_sec > 0 {
            nanos += (bytes as u128 * 1_000_000_000 / self.profile.bytes_per_sec as u128) as u64;
        }
        let mut m = self.throttle_milli.load(Ordering::Relaxed);
        if read {
            m = m.saturating_mul(self.slow_read_milli.load(Ordering::Relaxed)) / 1000;
        }
        let scaled = nanos.saturating_mul(m) / 1000;
        if scaled > 0 {
            // jitlint::allow(virtual_time): the simulated object store
            // models an *external* service the sim clock does not govern;
            // real thread sleeps are what make uploader-pool overlap and
            // backpressure measurable in wall time by store_bench.
            std::thread::sleep(Duration::from_nanos(scaled));
        }
    }

    /// Decides whether this put is silently lost (one-shot arm first,
    /// then the seeded coin).
    fn put_is_lost(&self, path: &str) -> bool {
        {
            let mut armed = self.lose_next.lock();
            let matches = armed
                .as_ref()
                .map(|p| path.starts_with(p.as_str()))
                .unwrap_or(false);
            if matches {
                *armed = None;
                return true;
            }
        }
        if self.profile.put_loss_per_mille == 0 {
            return false;
        }
        self.rng.lock().below(1000) < self.profile.put_loss_per_mille as u64
    }
}

impl StorageBackend for SimObjectStore {
    fn put(&self, path: &str, data: Bytes) -> SimResult<()> {
        self.slots.acquire();
        self.delay(self.profile.put_latency, data.len(), false);
        let res = if self.put_is_lost(path) {
            self.lost_puts.fetch_add(1, Ordering::Relaxed);
            Ok(()) // acknowledged, never stored
        } else {
            self.inner.put(path, data)
        };
        self.slots.release();
        res
    }

    fn get(&self, path: &str) -> SimResult<Bytes> {
        self.slots.acquire();
        let len = self.inner.size_of(path).unwrap_or(0);
        self.delay(self.profile.get_latency, len, true);
        let res = self.inner.get(path);
        self.slots.release();
        res
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn delete(&self, path: &str) {
        self.inner.delete(path)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.list(prefix)
    }

    fn delete_prefix(&self, prefix: &str) -> usize {
        self.inner.delete_prefix(prefix)
    }

    fn read_count(&self) -> u64 {
        self.inner.read_count()
    }

    fn list_count(&self) -> u64 {
        self.inner.list_count()
    }

    fn read_parallelism(&self) -> usize {
        // More concurrent `get`s than transfer slots just queue on the
        // slot condvar; the slot count is the useful fetch width.
        self.profile.parallel_streams.max(1)
    }

    fn object_count(&self) -> usize {
        self.inner.len()
    }

    fn kind(&self) -> &'static str {
        "objstore"
    }
}

//! Consistent-hash shard placement with epoch-based rebalancing.
//!
//! The coordinator spreads many jobs' checkpoint objects across a set
//! of storage nodes. Placement must (a) spread load well at any node
//! count, (b) move only ~1/N of the keyspace when a node joins or
//! leaves, and (c) keep *old* checkpoints readable across a membership
//! change without a stop-the-world migration. The classic answer is a
//! consistent-hash ring with virtual nodes, plus bounded **ring
//! history**: every membership change starts a new placement epoch;
//! writes always go to the newest ring, reads try the newest ring first
//! and fall back through recent older rings — so an object written two
//! epochs ago is still found on the node that was responsible for it
//! then, until [`PlacedStore::repair`] migrates it home.
//!
//! Lock discipline: the ring/membership state sits behind a `RwLock`
//! that is only ever held to *resolve* a route (clone the node `Arc`),
//! never across a backend call — backend puts can sleep for
//! milliseconds and must not block membership changes.

use bytes::Bytes;
use cluster::StorageBackend;
use simcore::sync::RwLock;
use simcore::{SimError, SimResult};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Virtual nodes per physical node: enough to keep the spread within a
/// few percent at small node counts, cheap to rebuild on membership
/// change.
const VNODES: usize = 64;

/// How many past placement epochs reads fall back through. Bounding
/// this bounds read amplification after churn; `repair` exists to
/// migrate stragglers before their epoch ages out.
const RING_HISTORY: usize = 3;

/// FNV-1a with a splitmix64 finalizer. Raw FNV distributes short,
/// structured keys (`"node0#vn3"`, `"ckpt/job1/…"`) poorly across the
/// full u64 range — without the avalanche pass a 4-node ring can leave
/// a node with no keyspace at all.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// One epoch's ring: sorted `(vnode_hash, node_slot)` points.
#[derive(Debug, Clone)]
struct Ring {
    points: Vec<(u64, usize)>,
}

impl Ring {
    fn build(live: &[bool]) -> Ring {
        let mut points = Vec::new();
        for (slot, alive) in live.iter().enumerate() {
            if !alive {
                continue;
            }
            for v in 0..VNODES {
                points.push((fnv1a(format!("node{slot}#vn{v}").as_bytes()), slot));
            }
        }
        points.sort_unstable();
        Ring { points }
    }

    /// First vnode clockwise of the path's hash.
    fn route(&self, path: &str) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let h = fnv1a(path.as_bytes());
        let i = self.points.partition_point(|&(ph, _)| ph < h);
        let (_, slot) = self.points[i % self.points.len()];
        Some(slot)
    }
}

struct Membership {
    /// Node slots; a removed node keeps its slot (dead) so older rings'
    /// slot indices stay meaningful.
    nodes: Vec<Option<Arc<dyn StorageBackend>>>,
    /// Newest ring first; bounded to `RING_HISTORY`.
    rings: Vec<Ring>,
    /// Bumped on every membership change.
    epoch: u64,
}

impl Membership {
    fn live_mask(&self) -> Vec<bool> {
        self.nodes.iter().map(|n| n.is_some()).collect()
    }

    fn push_ring(&mut self) {
        self.rings.insert(0, Ring::build(&self.live_mask()));
        self.rings.truncate(RING_HISTORY);
        self.epoch += 1;
    }
}

/// A placement-aware [`StorageBackend`]: routes each object to a
/// storage node by consistent hash, keeps recent ring history for reads
/// across rebalances, and supports explicit repair migration.
pub struct PlacedStore {
    state: RwLock<Membership>,
    /// Reads served by a node other than the current ring's home —
    /// restore-amplification visibility after churn ([`StorageBackend::
    /// fallback_reads`]); `repair` drives this back toward zero.
    fallback_hits: AtomicU64,
}

impl PlacedStore {
    /// Builds a placement over the given storage nodes (epoch 1).
    pub fn new(nodes: Vec<Arc<dyn StorageBackend>>) -> PlacedStore {
        let mut m = Membership {
            nodes: nodes.into_iter().map(Some).collect(),
            rings: Vec::new(),
            epoch: 0,
        };
        m.push_ring();
        PlacedStore {
            state: RwLock::new(m),
            fallback_hits: AtomicU64::new(0),
        }
    }

    /// Current placement epoch.
    pub fn epoch(&self) -> u64 {
        self.state.read().epoch
    }

    /// Live node count.
    pub fn live_nodes(&self) -> usize {
        self.state.read().nodes.iter().flatten().count()
    }

    /// Adds a storage node; new epoch, ~1/N of the keyspace re-homes.
    /// Returns the node's slot.
    pub fn add_node(&self, node: Arc<dyn StorageBackend>) -> usize {
        let mut m = self.state.write();
        m.nodes.push(Some(node));
        let slot = m.nodes.len() - 1;
        m.push_ring();
        slot
    }

    /// Removes a node (its objects become unreachable, as when a
    /// storage server dies); new epoch.
    pub fn remove_node(&self, slot: usize) -> Option<Arc<dyn StorageBackend>> {
        let mut m = self.state.write();
        let node = m.nodes.get_mut(slot)?.take();
        if node.is_some() {
            m.push_ring();
        }
        node
    }

    /// Per-slot object counts (live slots only) — balance diagnostics.
    pub fn node_object_counts(&self) -> Vec<(usize, usize)> {
        let nodes = self.snapshot_nodes();
        nodes
            .into_iter()
            .map(|(slot, n)| (slot, n.object_count()))
            .collect()
    }

    /// Resolves `path`'s home node on the newest ring.
    fn route_current(&self, path: &str) -> SimResult<Arc<dyn StorageBackend>> {
        let m = self.state.read();
        let slot = m.rings[0]
            .route(path)
            .ok_or_else(|| SimError::Storage("placement: no live storage nodes".into()))?;
        m.nodes[slot]
            .clone()
            .ok_or_else(|| SimError::Storage(format!("placement: node {slot} is gone")))
    }

    /// Resolves `path` across ring history, newest first, deduplicated.
    fn route_history(&self, path: &str) -> Vec<Arc<dyn StorageBackend>> {
        self.route_history_at(path).1
    }

    /// [`Self::route_history`] plus the epoch the routes were resolved
    /// under, so `get` can detect a membership change racing its probes.
    fn route_history_at(&self, path: &str) -> (u64, Vec<Arc<dyn StorageBackend>>) {
        let m = self.state.read();
        let mut slots = Vec::new();
        for ring in &m.rings {
            if let Some(slot) = ring.route(path) {
                if !slots.contains(&slot) {
                    slots.push(slot);
                }
            }
        }
        (
            m.epoch,
            slots
                .into_iter()
                .filter_map(|s| m.nodes[s].clone())
                .collect(),
        )
    }

    /// All live nodes with their slots (route snapshot for scans).
    fn snapshot_nodes(&self) -> Vec<(usize, Arc<dyn StorageBackend>)> {
        let m = self.state.read();
        m.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.clone().map(|n| (i, n)))
            .collect()
    }

    /// Migrates objects under `prefix` that no longer live on their
    /// current-ring home node (stragglers from older epochs). Returns
    /// how many objects moved. Run opportunistically; reads work
    /// without it until the writing epoch ages out of ring history.
    pub fn repair(&self, prefix: &str) -> usize {
        let nodes = self.snapshot_nodes();
        let mut moved = 0;
        for (slot, node) in &nodes {
            for path in node.list(prefix) {
                let Ok(home) = self.route_current(&path) else {
                    continue;
                };
                // Same backend instance ⇒ already home.
                let home_slot = {
                    let m = self.state.read();
                    m.rings[0].route(&path)
                };
                if home_slot == Some(*slot) {
                    continue;
                }
                if let Ok(data) = node.get(&path) {
                    if home.put(&path, data).is_ok() {
                        node.delete(&path);
                        moved += 1;
                    }
                }
            }
        }
        moved
    }
}

impl StorageBackend for PlacedStore {
    fn put(&self, path: &str, data: Bytes) -> SimResult<()> {
        self.route_current(path)?.put(path, data)
    }

    fn get(&self, path: &str) -> SimResult<Bytes> {
        // Probing runs with no ring lock held, so `add_node`/`remove_node`/
        // `repair` can land between resolve and probe — `repair` may even
        // move the object onto a node *outside* this snapshot. If every
        // candidate missed but the epoch moved, re-resolve against the new
        // rings before reporting failure (bounded: churn during one read
        // is rare, and each retry needs a fresh epoch).
        for _attempt in 0..(RING_HISTORY * 2) {
            let (epoch, candidates) = self.route_history_at(path);
            if candidates.is_empty() {
                return Err(SimError::Storage("placement: no live storage nodes".into()));
            }
            let mut last = None;
            for (i, node) in candidates.iter().enumerate() {
                match node.get(path) {
                    Ok(b) => {
                        if i > 0 {
                            self.fallback_hits.fetch_add(1, Ordering::Relaxed);
                        }
                        return Ok(b);
                    }
                    Err(e) => last = Some(e),
                }
            }
            if self.epoch() == epoch {
                return Err(last.unwrap_or_else(|| SimError::Storage(format!("{path}: not found"))));
            }
        }
        Err(SimError::Storage(format!(
            "{path}: not found (placement churned through every retry)"
        )))
    }

    fn exists(&self, path: &str) -> bool {
        self.route_history(path).iter().any(|n| n.exists(path))
    }

    fn delete(&self, path: &str) {
        for node in self.route_history(path) {
            node.delete(path);
        }
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        let mut all: Vec<String> = self
            .snapshot_nodes()
            .into_iter()
            .flat_map(|(_, n)| n.list(prefix))
            .collect();
        all.sort();
        all.dedup();
        all
    }

    fn delete_prefix(&self, prefix: &str) -> usize {
        // Count distinct paths, not per-node copies: a straggler and
        // its repaired home copy are one logical object.
        let distinct = self.list(prefix).len();
        for (_, node) in self.snapshot_nodes() {
            node.delete_prefix(prefix);
        }
        distinct
    }

    fn read_count(&self) -> u64 {
        self.snapshot_nodes()
            .iter()
            .map(|(_, n)| n.read_count())
            .sum()
    }

    fn list_count(&self) -> u64 {
        self.snapshot_nodes()
            .iter()
            .map(|(_, n)| n.list_count())
            .sum()
    }

    fn read_parallelism(&self) -> usize {
        // Shards stripe across the fleet by consistent hash, so the
        // useful fetch width is the sum of per-node read capacity.
        self.snapshot_nodes()
            .iter()
            .map(|(_, n)| n.read_parallelism())
            .sum::<usize>()
            .max(1)
    }

    fn fallback_reads(&self) -> u64 {
        self.fallback_hits.load(Ordering::Relaxed)
    }

    fn object_count(&self) -> usize {
        self.snapshot_nodes()
            .iter()
            .map(|(_, n)| n.object_count())
            .sum()
    }

    fn kind(&self) -> &'static str {
        "placed"
    }
}

//! Multi-job checkpoint coordination.
//!
//! The paper (and this repo through PR 8) treats checkpoint persistence
//! as one job talking to one in-process store. The north star — heavy
//! traffic, many tenants — needs a *persistence plane*: many concurrent
//! training jobs sharing placement-aware storage whose behavior
//! (latency, bandwidth, faults) is realistic enough to measure against.
//! This crate is that plane, built entirely on the
//! [`StorageBackend`](cluster::StorageBackend) trait:
//!
//! * [`object_store`] — [`SimObjectStore`]: the in-memory store wrapped
//!   with injected latency, metered per-stream bandwidth, bounded
//!   transfer slots, and lossy/torn/slow fault injection;
//! * [`placement`] — [`PlacedStore`]: consistent-hash shard placement
//!   over a node fleet with epoch-based rebalancing, bounded ring
//!   history for reads across membership changes, and repair migration;
//! * [`coordinator`] — [`Coordinator`]/[`JobSession`]: job admission
//!   with per-job write-behind backpressure
//!   ([`JobGate`](jitckpt::pipeline::JobGate)), retention GC that
//!   respects delta-base pinning, and departure purge.

pub mod coordinator;
pub mod object_store;
pub mod placement;

pub use coordinator::{Coordinator, CoordinatorConfig, JobSession, JobSpec};
pub use object_store::{ObjectStoreProfile, SimObjectStore};
pub use placement::PlacedStore;

//! The multi-job checkpoint coordinator.
//!
//! One long-running [`Coordinator`] owns a storage fleet (any
//! [`StorageBackend`] — typically a [`PlacedStore`](crate::PlacedStore)
//! over many nodes) and a shared [`WriteBehind`] uploader pool. Training
//! jobs are *admitted* into [`JobSession`]s that carry everything a
//! job's ranks need to persist checkpoints:
//!
//! * a per-job [`JobGate`] — admission control, so one job writing to a
//!   degraded backend throttles itself, not the fleet;
//! * the shared write-behind pipeline (or the job's dedicated backend,
//!   for jobs that bring their own storage);
//! * lifecycle: retention-driven garbage collection after every durable
//!   checkpoint, and departure purge.
//!
//! Retention interacts with delta chains: a retained sidecar's shards
//! may reference bytes living in *older* iterations' directories
//! (`base_iteration`). GC therefore keeps the newest `keep_checkpoints`
//! iterations **plus** every iteration their sidecars reference; the
//! writer-side chain cap ([`ShardConfig::max_delta_chain`]) bounds how
//! long those references can pin history, so sustained load reaches a
//! steady-state object count instead of growing with job age.

use crate::object_store::SimObjectStore;
use cluster::StorageBackend;
use dltrain::TrainState;
use jitckpt::checkpoint::{self, CheckpointMeta, CkptKind, MetaCache, ShardConfig, ShardPlan};
use jitckpt::pipeline::{CkptTicket, JobGate, WriteBehind, WriteBehindConfig};
use jitckpt::restore::{load_for_rank_parallel, RestoreConfig, RestoreStats};
use simcore::layout::ParallelLayout;
use simcore::sync::Mutex;
use simcore::{JobId, RankId, SimResult};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Per-job admission parameters.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Ranks the job runs with (bookkeeping; sizing hints).
    pub ranks: usize,
    /// Shard/delta policy for the job's checkpoints.
    pub shards: ShardConfig,
    /// Newest durable checkpoints (iterations) retention keeps per job.
    pub keep_checkpoints: usize,
    /// In-flight checkpoint bytes this job may have queued + uploading.
    pub inflight_budget_bytes: usize,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            ranks: 8,
            shards: ShardConfig::default(),
            keep_checkpoints: 2,
            inflight_budget_bytes: 256 << 20,
        }
    }
}

/// Coordinator-wide tuning.
#[derive(Debug, Clone, Default)]
pub struct CoordinatorConfig {
    /// Shared uploader pool configuration.
    pub pipeline: WriteBehindConfig,
}

/// Counters for one admitted job.
#[derive(Debug, Default)]
pub struct JobStats {
    /// Checkpoints submitted through the write-behind path.
    pub submitted: AtomicU64,
    /// Checkpoints written through the blocking path.
    pub blocking_writes: AtomicU64,
    /// Objects deleted by retention GC.
    pub gc_deleted: AtomicU64,
    /// Restores served through [`JobSession::restore_for_rank`].
    pub restores: AtomicU64,
    /// Shard `get`s those restores issued (sidecar reads excluded).
    pub restore_shard_reads: AtomicU64,
    /// Payload bytes those restores fetched.
    pub restore_bytes: AtomicU64,
    /// Reads served off an older placement ring during restores — the
    /// job raced a rebalance and the ring history covered it.
    pub restore_fallback_hits: AtomicU64,
}

impl JobStats {
    /// Restore read amplification: shard reads per restore. `1.0` per
    /// shard is the floor; higher means delta chains or churn made the
    /// job fetch more objects than a single-wave full checkpoint would.
    pub fn restore_amplification(&self, shards_per_checkpoint: usize) -> f64 {
        let restores = self.restores.load(Ordering::Relaxed);
        if restores == 0 || shards_per_checkpoint == 0 {
            return 0.0;
        }
        let reads = self.restore_shard_reads.load(Ordering::Relaxed);
        reads as f64 / (restores as f64 * shards_per_checkpoint as f64)
    }
}

/// A job admitted to the coordinator: the handle its ranks checkpoint
/// through.
pub struct JobSession {
    job: JobId,
    spec: JobSpec,
    backend: Arc<dyn StorageBackend>,
    pipeline: Arc<WriteBehind>,
    gate: Arc<JobGate>,
    /// Outstanding write-behind tickets; drained on departure.
    tickets: Mutex<Vec<CkptTicket>>,
    /// Newest-iteration memo per cell: spares delta staging the full
    /// `store.list` scan of `latest_meta_before` on every checkpoint
    /// (entries are validated with one targeted sidecar read, scan on
    /// miss — behavior is identical to the uncached path, only list
    /// traffic differs).
    meta_cache: MetaCache,
    stats: JobStats,
}

impl JobSession {
    /// The job's id.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// The backend this job persists to.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// The job's admission gate.
    pub fn gate(&self) -> &Arc<JobGate> {
        &self.gate
    }

    /// The job's counters.
    pub fn stats(&self) -> &JobStats {
        &self.stats
    }

    /// Persists one rank-cell checkpoint through the write-behind
    /// pipeline: stages (encode + delta resolve) on the calling thread,
    /// streams shard uploads in the background. Returns immediately
    /// with a durability ticket.
    pub fn submit_checkpoint(
        &self,
        kind: CkptKind,
        rank: RankId,
        stage: usize,
        part: usize,
        dp: usize,
        state: &TrainState,
    ) -> CkptTicket {
        let cfg = self.spec.shards.auto_sized_for(state);
        let plan = ShardPlan::stage_cached(
            &self.backend,
            self.job,
            kind,
            rank,
            stage,
            part,
            dp,
            state,
            &cfg,
            Some(&self.meta_cache),
        );
        let ticket = self
            .pipeline
            .submit_to(&self.backend, &plan, Some(&self.gate));
        self.meta_cache
            .record(self.job, kind, stage, part, dp, state.iteration);
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.tickets.lock().push(ticket.clone());
        ticket
    }

    /// The pre-pipeline path: every shard put blocks the caller
    /// (benchmark baseline, and the right tool for the final checkpoint
    /// before an intentional shutdown).
    pub fn write_checkpoint_blocking(
        &self,
        kind: CkptKind,
        rank: RankId,
        stage: usize,
        part: usize,
        dp: usize,
        state: &TrainState,
    ) -> SimResult<()> {
        self.stats.blocking_writes.fetch_add(1, Ordering::Relaxed);
        let cfg = self.spec.shards.auto_sized_for(state);
        let plan = ShardPlan::stage_cached(
            &self.backend,
            self.job,
            kind,
            rank,
            stage,
            part,
            dp,
            state,
            &cfg,
            Some(&self.meta_cache),
        );
        checkpoint::write_plan(&self.backend, &plan, cfg.workers)?;
        self.meta_cache
            .record(self.job, kind, stage, part, dp, state.iteration);
        Ok(())
    }

    /// Restores the resolved checkpoint for `rank` through the parallel
    /// restore plane, recording read metrics so the coordinator can
    /// report restore amplification per job
    /// ([`JobStats::restore_amplification`]).
    pub fn restore_for_rank(
        &self,
        layout: &ParallelLayout,
        rank: RankId,
    ) -> SimResult<(TrainState, CheckpointMeta, RestoreStats)> {
        let out = load_for_rank_parallel(
            &self.backend,
            self.job,
            layout,
            rank,
            &RestoreConfig::default(),
        )?;
        let stats = &out.2;
        self.stats.restores.fetch_add(1, Ordering::Relaxed);
        self.stats
            .restore_shard_reads
            .fetch_add(stats.shard_reads, Ordering::Relaxed);
        self.stats
            .restore_bytes
            .fetch_add(stats.bytes_fetched, Ordering::Relaxed);
        self.stats
            .restore_fallback_hits
            .fetch_add(stats.fallback_hits, Ordering::Relaxed);
        Ok(out)
    }

    /// Waits until every checkpoint submitted through this session is
    /// durable (or failed), returning the first error.
    pub fn drain(&self) -> SimResult<()> {
        let tickets: Vec<CkptTicket> = std::mem::take(&mut *self.tickets.lock());
        let mut first_err = Ok(());
        for t in &tickets {
            if let Err(e) = t.wait() {
                if first_err.is_ok() {
                    first_err = Err(e);
                }
            }
        }
        first_err
    }

    /// Retention GC: keeps the newest `keep_checkpoints` iterations of
    /// `kind` plus every older iteration their sidecars still reference
    /// as delta bases; deletes the rest. Returns objects deleted.
    /// Incomplete iterations (no sidecar anywhere — e.g. a write torn
    /// by a failure) older than the retention window are swept too.
    pub fn gc(&self, kind: CkptKind) -> usize {
        let prefix = checkpoint::job_prefix(self.job, kind);
        let mut iterations: BTreeSet<u64> = BTreeSet::new();
        let mut sidecars: Vec<(u64, String)> = Vec::new();
        for path in self.backend.list(&prefix) {
            let Some(it) = iteration_of(&prefix, &path) else {
                continue;
            };
            iterations.insert(it);
            if path.ends_with("/meta") {
                sidecars.push((it, path));
            }
        }
        if iterations.len() <= self.spec.keep_checkpoints {
            return 0;
        }

        let retained: BTreeSet<u64> = iterations
            .iter()
            .rev()
            .take(self.spec.keep_checkpoints.max(1))
            .copied()
            .collect();

        // Delta bases pinned by retained sidecars. `base_iteration` is
        // collapsed at write time, so one level of chasing suffices.
        let mut pinned: BTreeSet<u64> = BTreeSet::new();
        for (it, path) in &sidecars {
            if !retained.contains(it) {
                continue;
            }
            let Ok(raw) = self.backend.get(path) else {
                continue;
            };
            let Ok(meta) = simcore::codec::decode_framed::<CheckpointMeta>(&raw) else {
                continue;
            };
            for s in &meta.shards {
                if let Some(base) = s.base_iteration {
                    pinned.insert(base);
                }
            }
        }

        let mut deleted = 0;
        for it in iterations {
            if retained.contains(&it) || pinned.contains(&it) {
                continue;
            }
            deleted += self.backend.delete_prefix(&format!("{prefix}it{it:010}/"));
        }
        self.stats
            .gc_deleted
            .fetch_add(deleted as u64, Ordering::Relaxed);
        deleted
    }
}

/// Parses the iteration out of `"{prefix}it{iter:010}/..."`.
fn iteration_of(prefix: &str, path: &str) -> Option<u64> {
    let rest = path.strip_prefix(prefix)?;
    let it_dir = rest.split('/').next()?;
    it_dir.strip_prefix("it")?.parse().ok()
}

/// The long-running multi-job coordinator.
pub struct Coordinator {
    backend: Arc<dyn StorageBackend>,
    pipeline: Arc<WriteBehind>,
    jobs: Mutex<BTreeMap<u32, Arc<JobSession>>>,
    next_job: AtomicU32,
}

impl Coordinator {
    /// Creates a coordinator persisting to `backend` through a shared
    /// write-behind uploader pool.
    pub fn new(backend: Arc<dyn StorageBackend>, cfg: CoordinatorConfig) -> Coordinator {
        let pipeline = Arc::new(WriteBehind::new(backend.clone(), cfg.pipeline));
        Coordinator {
            backend,
            pipeline,
            jobs: Mutex::new(BTreeMap::new()),
            next_job: AtomicU32::new(0),
        }
    }

    /// Convenience: a coordinator over a single simulated object store.
    pub fn over_object_store(store: SimObjectStore, cfg: CoordinatorConfig) -> Coordinator {
        Coordinator::new(Arc::new(store), cfg)
    }

    /// The fleet backend jobs share by default.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// Admits a job against the shared fleet backend.
    pub fn admit(&self, spec: JobSpec) -> Arc<JobSession> {
        let backend = self.backend.clone();
        self.admit_with_backend(spec, backend)
    }

    /// Admits a job that brings its own backend (e.g. a dedicated —
    /// possibly degraded — object store) but shares the coordinator's
    /// uploader pool: the configuration the per-job gate exists for.
    pub fn admit_with_backend(
        &self,
        spec: JobSpec,
        backend: Arc<dyn StorageBackend>,
    ) -> Arc<JobSession> {
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(JobSession {
            job: JobId(id),
            gate: JobGate::new(spec.inflight_budget_bytes),
            backend,
            pipeline: self.pipeline.clone(),
            tickets: Mutex::new(Vec::new()),
            meta_cache: MetaCache::new(),
            stats: JobStats::default(),
            spec,
        });
        self.jobs.lock().insert(id, session.clone());
        session
    }

    /// Currently admitted jobs.
    pub fn active_jobs(&self) -> usize {
        self.jobs.lock().len()
    }

    /// Departs a job: drains its outstanding tickets and, with `purge`,
    /// deletes everything it persisted. Returns objects purged.
    pub fn depart(&self, job: JobId, purge: bool) -> SimResult<usize> {
        let session = self.jobs.lock().remove(&job.0);
        let Some(session) = session else {
            return Ok(0);
        };
        session.drain()?;
        if !purge {
            return Ok(0);
        }
        let mut removed = 0;
        for kind in [CkptKind::Jit, CkptKind::Periodic] {
            removed += session
                .backend
                .delete_prefix(&checkpoint::job_prefix(job, kind));
        }
        Ok(removed)
    }
}
